"""Unified replay engine: one stage pipeline, pluggable execution backends.

Every replay entry point — :func:`repro.sim.replay.replay`,
:func:`repro.sim.replay.compare_drop_rates`,
:class:`repro.sim.closedloop.ClosedLoopSimulator` and ``repro filter`` in
the CLI — drives the same five-stage packet pipeline:

1. **scheduler-advance** — fire trace-time events due at or before the
   packet's timestamp (:class:`repro.sim.engine.EventScheduler`);
2. **blocklist lookup** — a connection once refused stays refused
   (:meth:`BlockedConnectionStore.suppress`);
3. **filter verdict** — :meth:`PacketFilter.process` /
   :meth:`PacketFilter.process_batch`;
4. **metrics / accounting** — offered/passed throughput bins, inbound
   drop windows, replay counters;
5. **blocklist update** — a dropped inbound σ is registered as blocked.

Stages 2–5 are implemented once in :class:`repro.sim.router.EdgeRouter`
(:meth:`~repro.sim.router.EdgeRouter.forward` per packet,
:meth:`~repro.sim.router.EdgeRouter.process_batch` per chunk);
:class:`ReplayPipeline` adds the scheduler stage in front and the
finalize hook (end-of-replay blocklist compaction, result assembly)
behind.  An :class:`ExecutionBackend` decides *how* the stream traverses
the stages:

* :class:`SequentialBackend` — one packet at a time; the only backend
  whose per-packet scheduler granularity supports feedback loops.
* :class:`BatchedBackend` — columnar chunks through the fused fast path
  (bitmap filters) or the generic :meth:`PacketFilter.process_batch`
  protocol.  With a scheduler attached, chunks are split at event
  boundaries so probes fire at exactly the per-packet moments.
* :class:`ParallelBackend` — multiprocess sharded lanes
  (:mod:`repro.sim.parallel`), each lane itself driven by the batched or
  sequential backend.

All backends are bit-identical by contract: same verdicts, same
statistics, same RNG consumption (``tests/sim/test_pipeline.py`` holds
the cross-backend property tests).  :func:`select_backend` maps the
``(batched, workers, scheduler)`` knobs of :func:`replay` onto one
backend and raises on incoherent combinations instead of silently
downgrading.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.filters.base import PacketFilter, Verdict
from repro.filters.blocklist import BlockedConnectionStore
from repro.net.packet import Direction, Packet
from repro.net.table import PacketTable
from repro.sim.engine import EventScheduler
from repro.sim.metrics import ThroughputSeries
from repro.sim.router import EdgeRouter


def iter_packetlike(packets) -> Iterator:
    """Flatten any accepted stream shape into packet-shaped objects.

    Accepts a ``List[Packet]``, any iterable of packets, one
    :class:`PacketTable`, or an iterable of tables (e.g.
    :meth:`TraceGenerator.iter_tables`).  Table rows come out as a single
    reused zero-allocation :class:`~repro.net.table.PacketView` cursor —
    consume each item before advancing, do not retain it.
    """
    if isinstance(packets, PacketTable):
        yield from packets.iter_views()
        return
    iterator = iter(packets)
    first = next(iterator, None)
    if first is None:
        return
    if isinstance(first, PacketTable):
        yield from first.iter_views()
        for table in iterator:
            yield from table.iter_views()
        return
    yield first
    yield from iterator


@dataclass
class PipelineConfig:
    """Everything a backend needs to instantiate the stage pipeline."""

    packet_filter: PacketFilter
    use_blocklist: bool = True
    throughput_interval: float = 1.0
    drop_window: float = 10.0
    scheduler: Optional[EventScheduler] = None
    #: Maintain a running verdict fingerprint (see :func:`fingerprint_verdicts`).
    record_fingerprint: bool = False


#: FNV-1a 64-bit offset basis — the empty verdict fingerprint.
FINGERPRINT_SEED = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_FNV_MASK = (1 << 64) - 1


def fingerprint_verdicts(fingerprint: int, verdicts: Iterable[Verdict]) -> int:
    """Fold a verdict sequence into a running 64-bit FNV-1a fingerprint.

    The fingerprint is a pure function of the verdict *sequence* —
    independent of chunking, batching or representation — so two replays
    of the same stream compare with one integer, and a service warm
    restart can persist the accumulator (a plain int) and keep folding.
    Start from :data:`FINGERPRINT_SEED`.
    """
    DROP = Verdict.DROP
    for verdict in verdicts:
        fingerprint = (
            (fingerprint ^ (2 if verdict is DROP else 1)) * _FNV_PRIME
        ) & _FNV_MASK
    return fingerprint


@dataclass
class ReplayResult:
    """Everything a replay produces — one shape for every backend.

    Single-process runs leave ``workers`` at 1 and ``lanes`` empty; the
    parallel backend fills both (``lanes`` holds the per-shard
    :class:`repro.sim.parallel.LaneResult` records merged into
    ``router``).
    """

    router: EdgeRouter
    packets: int
    inbound_packets: int
    inbound_dropped: int
    duration: float
    #: Worker-process cap the replay ran under (1 = in-process).
    workers: int = 1
    #: Per-lane records of a partitioned replay (empty when in-process).
    lanes: List[Any] = field(default_factory=list)
    #: Running verdict fingerprint (None unless the pipeline recorded one).
    fingerprint: Optional[int] = None

    @property
    def inbound_drop_rate(self) -> float:
        """Fraction of inbound packets dropped (Figure 8's metric)."""
        if self.inbound_packets == 0:
            return 0.0
        return self.inbound_dropped / self.inbound_packets

    @property
    def passed(self) -> ThroughputSeries:
        """Throughput of traffic the filter admitted."""
        return self.router.passed

    @property
    def offered(self) -> ThroughputSeries:
        """Throughput of everything presented to the router."""
        return self.router.offered

    def lane_packet_counts(self) -> Dict[str, int]:
        """Packets per parallel lane, keyed by shard label (transit under
        ``*``); empty for single-process runs."""
        sharded = self.router.filter
        return {
            (sharded.shard_label(lane.lane) if lane.lane >= 0 else "*"): lane.packets
            for lane in self.lanes
        }


class ReplayPipeline:
    """The shared stage sequence, instantiated per replay.

    Backends feed packets through :meth:`process` (per packet) or
    :meth:`process_batch` (per chunk) and close with :meth:`finalize` —
    the *single* home of end-of-replay work: the final scheduler advance
    and the blocklist compaction that makes final table contents
    GC-phase-independent (previously copy-pasted in every replay loop).
    """

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config
        self.router = EdgeRouter(
            config.packet_filter,
            blocklist=BlockedConnectionStore() if config.use_blocklist else None,
            throughput_interval=config.throughput_interval,
            drop_window=config.drop_window,
        )
        self.scheduler = config.scheduler
        self.inbound = 0
        self.dropped = 0
        self.first_ts: Optional[float] = None
        self.last_ts = 0.0
        self.fingerprint: Optional[int] = (
            FINGERPRINT_SEED if config.record_fingerprint else None
        )

    # -- per-packet traversal -------------------------------------------

    def process(self, packet: Packet) -> Verdict:
        """Run one packet through all five stages."""
        now = packet.timestamp
        if self.first_ts is None:
            self.first_ts = now
        self.last_ts = now
        if self.scheduler is not None:
            self.scheduler.advance_to(now)
        verdict = self.router.forward(packet)
        if packet.direction is Direction.INBOUND:
            self.inbound += 1
            if verdict is Verdict.DROP:
                self.dropped += 1
        if self.fingerprint is not None:
            self.fingerprint = fingerprint_verdicts(self.fingerprint, (verdict,))
        return verdict

    # -- chunked traversal ----------------------------------------------

    def process_batch(self, packets: Iterable[Packet]) -> List[Verdict]:
        """Run a timestamp-ordered chunk through all five stages.

        Identical to ``[self.process(p) for p in packets]``.  Without a
        scheduler the whole chunk goes through the router's batched path
        in one piece.  With a scheduler, the chunk is split at event
        boundaries: every pending event fires exactly when the per-packet
        loop would have fired it — before the first packet whose
        timestamp reaches the event time — so probes observe identical
        filter state.
        """
        packet_list = packets if isinstance(packets, list) else list(packets)
        if not packet_list:
            return []
        if self.first_ts is None:
            self.first_ts = packet_list[0].timestamp
        self.last_ts = packet_list[-1].timestamp
        scheduler = self.scheduler
        if scheduler is None:
            return self._run_chunk(packet_list)
        verdicts: List[Verdict] = []
        position = 0
        total = len(packet_list)
        while position < total:
            next_fire = scheduler.next_time()
            if next_fire is None:
                verdicts.extend(self._run_chunk(packet_list[position:]))
                break
            end = position
            while end < total and packet_list[end].timestamp < next_fire:
                end += 1
            if end > position:
                verdicts.extend(self._run_chunk(packet_list[position:end]))
                position = end
            if position < total:
                # The next packet's timestamp has reached the event time;
                # fire everything due before processing it, exactly as the
                # per-packet loop's scheduler-advance stage does.
                scheduler.advance_to(packet_list[position].timestamp)
        return verdicts

    def process_table(self, table: PacketTable) -> List[Verdict]:
        """Run a timestamp-ordered :class:`PacketTable` through all five
        stages — the columnar twin of :meth:`process_batch`, with the
        same event-splitting contract.  Scheduler boundaries are found by
        binary search on the timestamp column and the chunk is handed
        down as pool-sharing :meth:`PacketTable.slice` segments.
        """
        total = len(table)
        if not total:
            return []
        timestamps = table.timestamps
        if self.first_ts is None:
            self.first_ts = timestamps[0]
        self.last_ts = timestamps[-1]
        scheduler = self.scheduler
        if scheduler is None:
            return self._run_table_chunk(table)
        verdicts: List[Verdict] = []
        position = 0
        while position < total:
            next_fire = scheduler.next_time()
            if next_fire is None:
                end = total
            else:
                # First packet whose timestamp has reached the event time.
                end = bisect_left(timestamps, next_fire, position)
            if end > position:
                segment = (
                    table if end - position == total
                    else table.slice(position, end)
                )
                verdicts.extend(self._run_table_chunk(segment))
                position = end
            if next_fire is None:
                break
            if position < total:
                scheduler.advance_to(timestamps[position])
        return verdicts

    def _run_table_chunk(self, chunk: PacketTable) -> List[Verdict]:
        verdicts = self.router.process_table(chunk)
        inbound = dropped = 0
        DROP = Verdict.DROP
        for is_out, verdict in zip(chunk.outbound, verdicts):
            if not is_out:
                inbound += 1
                if verdict is DROP:
                    dropped += 1
        self.inbound += inbound
        self.dropped += dropped
        if self.fingerprint is not None:
            self.fingerprint = fingerprint_verdicts(self.fingerprint, verdicts)
        return verdicts

    def _run_chunk(self, chunk: List[Packet]) -> List[Verdict]:
        verdicts = self.router.process_batch(chunk)
        inbound = dropped = 0
        INBOUND, DROP = Direction.INBOUND, Verdict.DROP
        for packet, verdict in zip(chunk, verdicts):
            if packet.direction is INBOUND:
                inbound += 1
                if verdict is DROP:
                    dropped += 1
        self.inbound += inbound
        self.dropped += dropped
        if self.fingerprint is not None:
            self.fingerprint = fingerprint_verdicts(self.fingerprint, verdicts)
        return verdicts

    # -- lane merging (parallel backend) --------------------------------

    def merge_lane(self, lane) -> None:
        """Fold one partitioned-replay lane's measurements and counters
        into this pipeline (series bins, drop windows, packet counts)."""
        self.router.merge_lane(lane)
        self.inbound += lane.inbound_packets
        self.dropped += lane.inbound_dropped

    def observe_span(self, first_ts: float, last_ts: float) -> None:
        """Declare the trace span for replays that never saw the packets
        in-process (the parallel merge path)."""
        if self.first_ts is None:
            self.first_ts = first_ts
        self.last_ts = last_ts

    # -- finalize hook --------------------------------------------------

    def finalize(self, *, workers: int = 1, lanes: Optional[List[Any]] = None) -> ReplayResult:
        """Close the replay and assemble the unified result.

        The one place end-of-replay work happens, for every backend:
        the scheduler is advanced to the trace's end (so its clock
        matches the per-packet loop's), and the blocklist is compacted at
        the last timestamp — the surviving table is exactly the entries
        still within retention, independent of interior GC phase and
        therefore identical across backends.
        """
        if self.first_ts is not None:
            if self.scheduler is not None:
                self.scheduler.advance_to(self.last_ts)
            if self.router.blocklist is not None:
                self.router.blocklist.compact(self.last_ts)
        return ReplayResult(
            router=self.router,
            packets=self.router.packets,
            inbound_packets=self.inbound,
            inbound_dropped=self.dropped,
            duration=(
                self.last_ts - self.first_ts if self.first_ts is not None else 0.0
            ),
            workers=workers,
            lanes=lanes if lanes is not None else [],
            fingerprint=self.fingerprint,
        )


# ---------------------------------------------------------------------------


class ReplayStepper:
    """Incremental pipeline traversal for open-ended streams.

    A batch ``run`` consumes one finite stream and finalizes; a live
    service feeds chunks as they arrive and must keep the pipeline open
    between them (and across snapshots).  :meth:`feed` pushes one chunk —
    a :class:`PacketTable` or a packet sequence — through the same stage
    implementations the owning backend's ``run`` uses, so a stepper-fed
    replay is verdict-identical to a one-shot replay of the concatenated
    stream.  :meth:`finish` closes the pipeline (scheduler drain,
    blocklist compaction) and assembles the :class:`ReplayResult`.
    """

    def __init__(self, pipeline: ReplayPipeline, chunk_size: Optional[int] = None,
                 per_packet: bool = False) -> None:
        self.pipeline = pipeline
        self.chunk_size = chunk_size
        self.per_packet = per_packet
        self._finished = False

    def feed(self, chunk) -> List[Verdict]:
        """Run one timestamp-ordered chunk through the open pipeline."""
        if self._finished:
            raise RuntimeError("stepper already finished")
        pipeline = self.pipeline
        if self.per_packet:
            process = pipeline.process
            return [process(packet) for packet in iter_packetlike(chunk)]
        limit = self.chunk_size
        if isinstance(chunk, PacketTable):
            if limit is None or len(chunk) <= limit:
                return pipeline.process_table(chunk)
            verdicts: List[Verdict] = []
            for start in range(0, len(chunk), limit):
                verdicts.extend(
                    pipeline.process_table(chunk.slice(start, start + limit))
                )
            return verdicts
        packet_list = chunk if isinstance(chunk, list) else list(iter_packetlike(chunk))
        if limit is None or len(packet_list) <= limit:
            return pipeline.process_batch(packet_list)
        verdicts = []
        for start in range(0, len(packet_list), limit):
            verdicts.extend(pipeline.process_batch(packet_list[start:start + limit]))
        return verdicts

    def finish(self) -> ReplayResult:
        """Close the pipeline and assemble the result (idempotent guard:
        a finished stepper refuses further feeds)."""
        if self._finished:
            raise RuntimeError("stepper already finished")
        self._finished = True
        return self.pipeline.finalize()


class ExecutionBackend(ABC):
    """How a packet stream traverses the stage pipeline."""

    name = "backend"

    def describe(self) -> str:
        """Human-readable engine label (CLI output)."""
        return self.name

    @abstractmethod
    def run(self, packets: Iterable[Packet], config: PipelineConfig) -> ReplayResult:
        """Replay ``packets`` through a fresh pipeline built from ``config``."""

    def stepper(self, config: PipelineConfig) -> ReplayStepper:
        """Open an incremental pipeline for chunk-at-a-time feeding.

        The returned :class:`ReplayStepper` traverses the stages exactly
        as this backend's :meth:`run` would, so feeding a stream in any
        chunking and calling ``finish()`` reproduces ``run``'s result
        bit for bit.  Backends whose execution model cannot pause
        mid-stream (multiprocess lanes) raise ``NotImplementedError``.
        """
        raise NotImplementedError(f"{self.name} backend cannot step incrementally")


class SequentialBackend(ExecutionBackend):
    """Per-packet traversal — the reference engine every other backend
    must reproduce bit for bit."""

    name = "sequential"

    def run(self, packets: Iterable[Packet], config: PipelineConfig) -> ReplayResult:
        pipeline = ReplayPipeline(config)
        process = pipeline.process
        for packet in iter_packetlike(packets):
            process(packet)
        return pipeline.finalize()

    def stepper(self, config: PipelineConfig) -> ReplayStepper:
        return ReplayStepper(ReplayPipeline(config), per_packet=True)


class BatchedBackend(ExecutionBackend):
    """Chunked traversal through the batched stage implementations.

    Filters with a registered fused kernel (:mod:`repro.sim.kernels`:
    bitmap, SPI, counting Bloom, token-bucket, RED policer, chain) take
    their one-loop columnar replay; everything else goes through the
    first-class :meth:`PacketFilter.process_batch` protocol (router
    stage-split when no blocklist is attached, per-packet fallback when
    one is — blocked-σ suppression must interleave with verdicts, which
    is also why the chain kernel declines blocklisted runs).
    ``chunk_size`` bounds columnarization memory; ``None`` replays the
    stream as one chunk.
    """

    name = "batched"

    def __init__(self, chunk_size: Optional[int] = None) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1: {chunk_size}")
        self.chunk_size = chunk_size

    def run(self, packets: Iterable[Packet], config: PipelineConfig) -> ReplayResult:
        pipeline = ReplayPipeline(config)
        limit = self.chunk_size

        def feed_table(table: PacketTable) -> None:
            if limit is None or len(table) <= limit:
                pipeline.process_table(table)
                return
            for start in range(0, len(table), limit):
                pipeline.process_table(table.slice(start, start + limit))

        if isinstance(packets, PacketTable):
            feed_table(packets)
            return pipeline.finalize()
        if isinstance(packets, list):
            packet_list = packets
        else:
            # Peek: an iterable may yield PacketTable chunks (the
            # generator's iter_tables stream) or plain packets.
            iterator = iter(packets)
            first = next(iterator, None)
            if first is None:
                return pipeline.finalize()
            if isinstance(first, PacketTable):
                feed_table(first)
                for table in iterator:
                    feed_table(table)
                return pipeline.finalize()
            packet_list = [first]
            packet_list.extend(iterator)
        if limit is None:
            pipeline.process_batch(packet_list)
        else:
            for start in range(0, len(packet_list), limit):
                pipeline.process_batch(packet_list[start:start + limit])
        return pipeline.finalize()

    def stepper(self, config: PipelineConfig) -> ReplayStepper:
        return ReplayStepper(ReplayPipeline(config), chunk_size=self.chunk_size)


class ParallelBackend(ExecutionBackend):
    """Multiprocess sharded traversal (:mod:`repro.sim.parallel`).

    The stream partitions into per-shard lanes; each worker process
    drives one lane through the batched backend (``lane_batched=False``
    selects the sequential backend per lane — same merged result, useful
    for isolating fast-path regressions), and the per-lane records merge
    back through the shared pipeline finalize hook.
    """

    name = "parallel"

    def __init__(self, workers: int, lane_batched: bool = True,
                 transport: str = "auto") -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        if transport not in ("auto", "shm", "pickle"):
            raise ValueError(
                f"transport must be 'auto', 'shm' or 'pickle': {transport!r}"
            )
        self.workers = workers
        self.lane_batched = lane_batched
        self.transport = transport

    def describe(self) -> str:
        suffix = "" if self.transport == "auto" else f" ({self.transport})"
        return f"parallel x{self.workers}{suffix}"

    def stepper(self, config: PipelineConfig) -> ReplayStepper:
        raise NotImplementedError(
            "the parallel backend shards whole streams across worker "
            "processes and cannot pause mid-stream; use the sequential or "
            "batched backend for incremental feeding"
        )

    def run(self, packets: Iterable[Packet], config: PipelineConfig) -> ReplayResult:
        if config.scheduler is not None:
            raise ValueError(
                "parallel replay cannot drive a scheduler — its probes "
                "would have to interleave across worker processes"
            )
        from repro.sim.parallel import parallel_replay

        return parallel_replay(
            packets,
            config.packet_filter,
            workers=self.workers,
            use_blocklist=config.use_blocklist,
            throughput_interval=config.throughput_interval,
            drop_window=config.drop_window,
            batched=self.lane_batched,
            transport=self.transport,
            # Parallel lanes record per-lane fingerprints, combined
            # lane-keyed — not the interleaved-stream value (replay()'s
            # front door still refuses the ambiguous combination).
            record_fingerprint=config.record_fingerprint,
        )


def select_backend(
    batched: Optional[bool] = None,
    workers: int = 1,
    scheduler: Optional[EventScheduler] = None,
    chunk_size: Optional[int] = None,
    transport: str = "auto",
) -> ExecutionBackend:
    """Map the ``(batched, workers, scheduler)`` knobs onto one backend.

    ``batched=None`` means "backend default": sequential in-process,
    batched lanes under the parallel backend.  Incoherent combinations
    raise instead of silently downgrading:

    ======== ======= ========= ==========================================
    batched  workers scheduler backend
    ======== ======= ========= ==========================================
    None     1       any       sequential
    False    1       any       sequential
    True     1       None      batched (one chunk)
    True     1       set       batched, chunks split at event boundaries
    None     >1      None      parallel, batched lanes
    True     >1      None      parallel, batched lanes
    False    >1      None      parallel, sequential lanes
    any      >1      set       **ValueError** (probes cannot interleave
                               across worker processes)
    any      <1      any       **ValueError**
    ======== ======= ========= ==========================================

    ``chunk_size`` is only meaningful for the batched backend; asking for
    it anywhere else is an error, not a silent ignore.  ``transport``
    (``auto``/``shm``/``pickle``) picks the parallel backend's lane
    dispatch mechanism; a non-default value anywhere else is likewise an
    error.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    if workers > 1:
        if scheduler is not None:
            raise ValueError(
                "parallel replay cannot drive a scheduler — its probes "
                "would have to interleave across worker processes"
            )
        if chunk_size is not None:
            raise ValueError(
                "chunk_size applies to the batched backend only; the "
                "parallel backend batches whole lanes"
            )
        return ParallelBackend(
            workers, lane_batched=batched is not False, transport=transport
        )
    if transport != "auto":
        raise ValueError(
            "transport applies to the parallel backend only (workers > 1)"
        )
    if batched:
        return BatchedBackend(chunk_size=chunk_size)
    if chunk_size is not None:
        raise ValueError("chunk_size requires batched=True")
    return SequentialBackend()
