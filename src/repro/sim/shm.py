"""Shared-memory lane transport for the parallel backend.

The pickle dispatch path serializes every lane table — columns, interned
pool, the lot — through the ``multiprocessing`` pipe, byte-copies it in
the parent, byte-copies it again in the child, and rebuilds every object.
On a one-socket host that costs more than the replay itself
(BENCH_parallel_replay.json: workers=2 at 0.25x of workers=1).

This module moves the bulk bytes out of the pipe.  The parent *publishes*
every lane's columns plus the shared interned pool into one
:class:`multiprocessing.shared_memory.SharedMemory` segment; what crosses
the pipe per lane is a :class:`ShmLane` — a name and a handful of
offsets.  Workers attach the segment, decode the (small) pool once per
segment, and wrap their lane's columns as a **zero-copy view table**
(:meth:`PacketTable.from_column_buffers`) mapped straight over the
parent's bytes.  Only the per-lane :class:`~repro.sim.parallel.LaneResult`
records travel back.

Layout of one segment::

    [pair pool bytes][payload pool bytes][lane 0 columns][lane 1 columns]...

Pools use the wire codec's record formats (:func:`repro.net.stream.pack_pairs`
/ :func:`pack_payloads`); columns are raw native-layout bytes — the
segment never leaves the machine, so no endianness or width translation
is needed.  Lifetime: the parent owns the segment and unlinks it in
``dispose()`` after the pool joins; workers close their mapping in
``ShmAttachment.close()``.  Nothing in the segment is executable — a
worker decodes offsets and raw numbers, never unpickles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.packet import SocketPair
from repro.net.stream import (
    pack_pairs,
    pack_payloads,
    unpack_pairs,
    unpack_payloads,
)
from repro.net.table import PacketTable

try:  # pragma: no cover - absent only on minimal builds
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: True when ``multiprocessing.shared_memory`` is importable; the
#: parallel transport falls back to pickle when it is not.
HAVE_SHARED_MEMORY = _shared_memory is not None


@dataclass
class ShmLane:
    """A picklable reference to one lane's columns inside a segment.

    This is the whole per-lane dispatch payload: a segment name, the row
    count, per-column ``(offset, nbytes)`` spans and the shared pool
    spans.  Compare with pickling the lane table itself, which ships
    every column byte plus the full interned pool through the pipe.
    """

    shm_name: str
    lane: int
    rows: int
    #: column name -> (byte offset, byte length) inside the segment.
    columns: Dict[str, Tuple[int, int]]
    #: (offset, nbytes, count) of the packed SocketPair pool.
    pair_span: Tuple[int, int, int]
    #: (offset, nbytes, count) of the packed payload pool (entry 0, the
    #: implicit empty payload, is never stored).
    payload_span: Tuple[int, int, int]


class ShmAttachment:
    """A worker's view of one :class:`ShmLane`: the zero-copy view table
    plus the release handle.

    ``close()`` releases the lane's column views — a mapped
    ``memoryview`` keeps the buffer exported, and the mapping (owned by
    the per-worker segment cache, not this attachment) cannot unmap
    under live exports.
    """

    def __init__(self, table: PacketTable, views: List[memoryview]) -> None:
        self.table = table
        self._views = views
        self._closed = False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        table = self.table
        self.table = None
        if table is not None:
            # Release the table's column casts so the exports die now,
            # not whenever GC gets around to the table.
            for name, _ in PacketTable.COLUMNS:
                try:
                    getattr(table, name).release()
                except (AttributeError, BufferError):  # pragma: no cover
                    pass
        for view in self._views:
            try:
                view.release()
            except BufferError:  # pragma: no cover - a leaked sub-view
                pass
        self._views = []


# Workers typically replay several lanes of the *same* segment; cache the
# mapping and the decoded pool so the pool parses once per segment, not
# once per lane.  One entry is enough — all lanes of one dispatch share
# one segment — and the mapping lives for the worker's lifetime (the
# parent's unlink reclaims the kernel object once every mapping is gone).
_pool_cache: Dict[str, Tuple[object, List[SocketPair], List[bytes]]] = {}


def _evict_cache() -> None:
    for shm, _, _ in _pool_cache.values():
        try:
            shm.close()
        except BufferError:  # pragma: no cover - stale lane still mapped
            pass
    _pool_cache.clear()


def _attach_segment(name: str, pair_span, payload_span):
    cached = _pool_cache.get(name)
    if cached is not None:
        return cached
    _evict_cache()
    shm = _shared_memory.SharedMemory(name=name)
    # Attaching registers the segment with the resource tracker on
    # CPython < 3.13 (bpo-38119).  Under spawn each worker runs its own
    # tracker, which would unlink the segment out from under the parent
    # at worker exit — deregister there.  Under fork the tracker process
    # is *shared* with the parent, whose own create-time registration is
    # the same set entry; deregistering here would erase it, so leave it
    # alone (the parent's unlink clears it).
    import multiprocessing
    if "fork" not in multiprocessing.get_all_start_methods():
        try:  # pragma: no cover - spawn-only platforms
            from multiprocessing import resource_tracker
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    pair_off, pair_nbytes, pair_count = pair_span
    payload_off, payload_nbytes, payload_count = payload_span
    with memoryview(shm.buf)[pair_off:pair_off + pair_nbytes] as raw:
        pairs = unpack_pairs(raw, pair_count)
    with memoryview(shm.buf)[payload_off:payload_off + payload_nbytes] as raw:
        payloads = [b""] + unpack_payloads(raw, payload_count)
    _pool_cache[name] = (shm, pairs, payloads)
    return shm, pairs, payloads


def attach_lane(ref: ShmLane) -> ShmAttachment:
    """Map one lane's columns as a zero-copy view table (worker side)."""
    if _shared_memory is None:  # pragma: no cover - gated by the caller
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    shm, pairs, payloads = _attach_segment(
        ref.shm_name, ref.pair_span, ref.payload_span
    )
    views: List[memoryview] = []
    columns: Dict[str, memoryview] = {}
    for name, (offset, nbytes) in ref.columns.items():
        view = memoryview(shm.buf)[offset:offset + nbytes]
        views.append(view)
        columns[name] = view
    table = PacketTable.from_column_buffers(columns, pairs, payloads)
    if len(table) != ref.rows:
        raise ValueError(
            f"lane {ref.lane}: segment holds {len(table)} rows, "
            f"dispatch said {ref.rows}"
        )
    return ShmAttachment(table, views)


class SharedTableArena:
    """The parent side: one segment holding every lane's columns.

    Build with :meth:`publish`; hand each :class:`ShmLane` in ``lanes``
    to its worker task; call :meth:`dispose` after the pool joins (a
    ``finally`` — the segment is a kernel object and outlives a crashed
    parent otherwise).
    """

    def __init__(self, shm, lanes: List[ShmLane]) -> None:
        self._shm = shm
        self.lanes = lanes
        self.nbytes = shm.size

    @classmethod
    def publish(cls, lane_tables: Sequence[Tuple[int, PacketTable]]) -> "SharedTableArena":
        """Copy lane columns + the shared pool into one fresh segment.

        All tables must share one interned pool (``partition_table``'s
        output contract) — the pool is stored once and every lane's id
        columns index it unchanged.
        """
        if _shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        if not lane_tables:
            raise ValueError("nothing to publish")
        pool_owner = lane_tables[0][1]
        for _, table in lane_tables:
            if table.pairs is not pool_owner.pairs:
                raise ValueError(
                    "lane tables must share one interned pool to share a "
                    "segment"
                )
        pair_blob = pack_pairs(pool_owner.pairs)
        payload_blob = pack_payloads(pool_owner.payloads[1:])

        # Size pass: pools first, then each lane's columns back to back.
        offset = len(pair_blob) + len(payload_blob)
        plans = []
        for lane, table in lane_tables:
            buffers = table.column_buffers()
            spans = {}
            for name, _, view in buffers:
                spans[name] = (offset, view.nbytes)
                offset += view.nbytes
            plans.append((lane, table, buffers, spans))

        shm = _shared_memory.SharedMemory(create=True, size=max(offset, 1))
        try:
            target = shm.buf
            target[:len(pair_blob)] = pair_blob
            payload_off = len(pair_blob)
            target[payload_off:payload_off + len(payload_blob)] = payload_blob
            lanes = []
            for lane, table, buffers, spans in plans:
                for name, _, view in buffers:
                    start, nbytes = spans[name]
                    target[start:start + nbytes] = view
                    view.release()
                lanes.append(ShmLane(
                    shm_name=shm.name,
                    lane=lane,
                    rows=len(table),
                    columns=spans,
                    pair_span=(0, len(pair_blob), len(pool_owner.pairs)),
                    payload_span=(payload_off, len(payload_blob),
                                  len(pool_owner.payloads) - 1),
                ))
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return cls(shm, lanes)

    def dispose(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:  # pragma: no cover
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
