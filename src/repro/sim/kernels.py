"""Filter-kernel registry: fused columnar replay for every filter.

:mod:`repro.sim.fastpath` fused the router → filter → accounting pipeline
for the bitmap filter only; SPI, counting Bloom, token-bucket, RED and
chain replays still crossed four layers of per-packet Python dispatch.
This module generalizes the fused loop into a small registry:

* :func:`register_kernel` maps a *filter class* to a :class:`FilterKernel`
  — an object that replays a whole :class:`~repro.net.table.PacketTable`
  (or packet batch) through an :class:`~repro.sim.router.EdgeRouter` in
  one loop with all hot state in locals.
* :func:`kernel_for` is an **exact-type** lookup: a subclass of a
  registered filter — which may override ``decide``/``process_batch``
  hooks the fused loop would silently ignore — takes the generic
  :meth:`~repro.filters.base.PacketFilter.process_batch` path instead.
* The router's batch entry points consult the registry first and fall
  back to the generic stage-split batch (blocklist-free) or the
  per-packet loop, so unregistered filters lose nothing.

Every kernel honors the equivalence contract of the batched engine:
**bit-identical** verdicts in order, filter statistics, blocklist
contents, throughput/drop-window bins, and RNG consumption relative to
``[router.forward(p) for p in packets]``.  Blocklist suppression must
interleave with verdicts (a drop inside the batch blocks the
connection's later packets), so each kernel inlines the blocked-σ store
the way :func:`~repro.sim.fastpath.process_table_fast` does rather than
staging it.  The chain kernel is the one exception: member composition
over survivor subsets cannot interleave suppression, so with a blocklist
attached it declines (returns ``None``) and the router runs the exact
per-packet loop.

``tests/sim/test_kernels.py`` holds every registered kernel to the
contract across backends, worker counts, transports and seeds.
"""

from __future__ import annotations

from itertools import repeat
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.bitmap_filter import FieldMode
from repro.core.dropper import RedDropPolicy, StaticDropPolicy
from repro.filters.base import PacketFilter, Verdict
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.chain import FilterChain
from repro.filters.counting import CountingBitmapFilter
from repro.filters.ratelimit import RedPolicerFilter, TokenBucketFilter
from repro.filters.spi import SPIFilter, _FlowState
from repro.net.inet import IPPROTO_TCP
from repro.net.packet import Direction, Packet
from repro.net.table import PacketTable, _np, _np_enabled
from repro.sim.fastpath import (
    process_packets_fast,
    process_table_fast,
    socket_key,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.router import EdgeRouter

__all__ = [
    "FilterKernel",
    "KERNELS",
    "register_kernel",
    "kernel_for",
]


#: Exact filter type → kernel instance.  Keyed by ``type(flt)`` — never
#: by ``isinstance`` — so subclasses with overridden per-packet hooks
#: fall through to the generic path that honors their overrides.
KERNELS: Dict[type, "FilterKernel"] = {}


def register_kernel(*filter_types: type):
    """Class decorator: register one kernel instance for ``filter_types``.

    The decorated class is instantiated once; the same instance serves
    every filter of the registered types (kernels are stateless — all
    replay state lives in the filter and router they are handed).
    """

    def decorate(kernel_cls):
        kernel = kernel_cls()
        for filter_type in filter_types:
            KERNELS[filter_type] = kernel
        return kernel_cls

    return decorate


def kernel_for(packet_filter: PacketFilter) -> Optional["FilterKernel"]:
    """The registered kernel for this filter's **exact** type, or None."""
    return KERNELS.get(type(packet_filter))


class FilterKernel:
    """A fused batched replay implementation for one filter type.

    Three entry points, all bound by the equivalence contract:

    * :meth:`run_table` — replay a table through a router (offered /
      blocklist / filter / metrics all fused).  May return ``None`` when
      this router configuration cannot be fused (the router then falls
      back to its exact generic paths).
    * :meth:`run_packets` — same for a ``Sequence[Packet]``; the default
      columnarizes and delegates to :meth:`run_table`.
    * :meth:`filter_table` — filter-level only (verdicts + the filter's
      own statistics, no router accounting), used by the chain kernel to
      compose member kernels.  The default routes through the filter's
      :meth:`~repro.filters.base.PacketFilter.process_batch` protocol.
    """

    def run_table(self, router: "EdgeRouter", table) -> Optional[List[Verdict]]:
        raise NotImplementedError  # pragma: no cover - abstract

    def run_packets(
        self, router: "EdgeRouter", packets: Sequence[Packet]
    ) -> Optional[List[Verdict]]:
        return self.run_table(router, PacketTable.from_packets(packets))

    def filter_table(self, flt: PacketFilter, table) -> List[Verdict]:
        return flt.process_batch(table.to_packets())


# ----------------------------------------------------------------------
# Shared loop scaffolding
# ----------------------------------------------------------------------


def _bin_columns(timestamps, total: int, series_interval: float, drop_window: float):
    """Per-packet series/window bin indices, column-wise.

    ``int(x)`` and a float64→int64 cast both truncate toward zero, so the
    numpy path is value-identical to the per-packet ``int(now / interval)``.
    """
    if _np_enabled() and total > 64:
        ts_np = _np.frombuffer(timestamps, dtype=_np.float64)
        return (
            (ts_np / series_interval).astype(_np.int64).tolist(),
            (ts_np / drop_window).astype(_np.int64).tolist(),
        )
    return (
        [int(now / series_interval) for now in timestamps],
        [int(now / drop_window) for now in timestamps],
    )


def _flush_stats(stats, passed_out_n, passed_in_n, dropped_out_n, dropped_in_n,
                 passed_out_b, passed_in_b, dropped_out_b, dropped_in_b) -> None:
    """Fold a loop's local FilterStats counters back into the filter."""
    stats.passed[Direction.OUTBOUND] += passed_out_n
    stats.passed[Direction.INBOUND] += passed_in_n
    stats.dropped[Direction.OUTBOUND] += dropped_out_n
    stats.dropped[Direction.INBOUND] += dropped_in_n
    stats.passed_bytes[Direction.OUTBOUND] += passed_out_b
    stats.passed_bytes[Direction.INBOUND] += passed_in_b
    stats.dropped_bytes[Direction.OUTBOUND] += dropped_out_b
    stats.dropped_bytes[Direction.INBOUND] += dropped_in_b


# ----------------------------------------------------------------------
# Bitmap — delegates to the original fused loops in repro.sim.fastpath
# ----------------------------------------------------------------------


@register_kernel(BitmapPacketFilter)
class BitmapKernel(FilterKernel):
    """The paper's filter: byte-staged vectors, rotation-window caches."""

    def run_table(self, router: "EdgeRouter", table) -> List[Verdict]:
        return process_table_fast(router, table)

    def run_packets(
        self, router: "EdgeRouter", packets: Sequence[Packet]
    ) -> List[Verdict]:
        # The object-path fused loop keeps the memo's per-packet hit
        # accounting; converting to a table here would change it.
        return process_packets_fast(router, packets)


# ----------------------------------------------------------------------
# SPI — exact per-flow state table, fused
# ----------------------------------------------------------------------


def _spi_replay(flt: SPIFilter, table, router) -> List[Verdict]:
    """Fused SPI replay over a table; ``router=None`` = filter-level only.

    Inlines :meth:`SPIFilter.decide` (GC clock, flow install/refresh,
    TCP close tracking, the guarded ``P_d`` draw) plus — when a router is
    given — offered/passed bins, drop windows and the blocked-σ store.
    The canonical pair doubles as both the SPI flow key and the blocklist
    key, so it is computed once per interned flow.
    """
    total = len(table)
    verdicts: List[Verdict] = []
    if router is not None:
        router.packets += total
    if total == 0:
        return verdicts

    PASS, DROP = Verdict.PASS, Verdict.DROP
    pairs = table.pairs
    n_pairs = len(pairs)
    canon_keys: List[Optional[object]] = [None] * n_pairs
    tcp_flags = bytearray(n_pairs)

    flow_table = flt._table
    flow_get = flow_table.get
    flow_pop = flow_table.pop
    peak_flows = flt.peak_flows
    rng_random = flt._rng.random
    controller = flt.drop_controller
    record_upload = controller.meter.record
    static_p: Optional[float] = (
        controller.policy.probability(0.0)
        if isinstance(controller.policy, StaticDropPolicy)
        else None
    )
    probability_at = controller.probability
    idle = flt.idle_timeout
    time_wait = flt.time_wait
    gc_interval = flt._gc_interval
    next_gc = flt._next_gc

    passed_out_n = passed_in_n = dropped_out_n = dropped_in_n = 0
    passed_out_b = passed_in_b = dropped_out_b = dropped_in_b = 0
    append = verdicts.append

    has_router = router is not None
    blocked = None
    if has_router:
        offered_bins = router.offered._bins
        passed_bins = router.passed._bins
        offered_out = offered_bins[Direction.OUTBOUND]
        offered_in = offered_bins[Direction.INBOUND]
        passed_out = passed_bins[Direction.OUTBOUND]
        passed_in = passed_bins[Direction.INBOUND]
        window_packets = router.inbound_drops._packets
        window_dropped = router.inbound_drops._dropped
        series_bins, window_bins = _bin_columns(
            table.timestamps, total, router.offered.interval,
            router.inbound_drops.window,
        )
        blocklist = router.blocklist
        if blocklist is not None:
            blocked = blocklist._blocked
            retention = blocklist.retention
            bl_gc_interval = blocklist._gc_interval
            bl_next_gc = blocklist._next_gc
            supp_n = supp_b = 0
    else:
        series_bins = window_bins = repeat(0)

    for now, size, is_out, pid, fl, series_bin, window_index in zip(
        table.timestamps, table.sizes, table.outbound, table.pair_ids,
        table.flags, series_bins, window_bins,
    ):
        if has_router:
            if is_out:
                offered_out[series_bin] = offered_out.get(series_bin, 0) + size
            else:
                offered_in[series_bin] = offered_in.get(series_bin, 0) + size
            if blocked is not None:
                # Inlined BlockedConnectionStore._maybe_gc / suppress_fields.
                if retention is not None:
                    if bl_next_gc is None:
                        bl_next_gc = now + bl_gc_interval
                    elif now >= bl_next_gc:
                        bl_next_gc = now + bl_gc_interval
                        horizon = now - retention
                        for stale in [
                            entry for entry, stamped in blocked.items()
                            if stamped < horizon
                        ]:
                            del blocked[stale]
                canon = canon_keys[pid]
                if canon is None:
                    canon = canon_keys[pid] = pairs[pid].canonical
                    tcp_flags[pid] = 1 if canon[0] == IPPROTO_TCP else 0
                stamped = blocked.get(canon)
                if stamped is not None:
                    if retention is not None and now - stamped > retention:
                        del blocked[canon]
                    else:
                        blocked[canon] = now
                        supp_n += 1
                        supp_b += size
                        append(DROP)
                        if not is_out:
                            window_packets[window_index] = (
                                window_packets.get(window_index, 0) + 1
                            )
                            window_dropped[window_index] = (
                                window_dropped.get(window_index, 0) + 1
                            )
                        continue

        # Inlined SPIFilter._maybe_gc.
        if next_gc is None:
            next_gc = now + gc_interval
        elif now >= next_gc:
            next_gc = now + gc_interval
            for stale_key in [
                key for key, state in flow_table.items()
                if (now > state.expires_at if state.expires_at is not None
                    else now - state.last_seen > idle)
            ]:
                del flow_table[stale_key]

        key = canon_keys[pid]
        if key is None:
            key = canon_keys[pid] = pairs[pid].canonical
            tcp_flags[pid] = 1 if key[0] == IPPROTO_TCP else 0

        if is_out:
            state = flow_get(key)
            if state is None or (fl & 0x02 and not fl & 0x10):
                # New flow, or a fresh SYN reusing a five-tuple.
                state = _FlowState(now)
                flow_table[key] = state
                if len(flow_table) > peak_flows:
                    peak_flows = len(flow_table)
            else:
                state.last_seen = now
            if tcp_flags[pid]:
                if fl & 0x04:  # RST: abortive close
                    flow_pop(key, None)
                elif fl & 0x01:  # FIN
                    state.fin_fwd = True
                    if state.fin_rev:
                        state.expires_at = now + time_wait
            record_upload(now, size)
            passed_out_n += 1
            passed_out_b += size
            if has_router:
                passed_out[series_bin] = passed_out.get(series_bin, 0) + size
            append(PASS)
            continue

        state = flow_get(key)
        if state is not None:
            expires_at = state.expires_at
            if (now <= expires_at if expires_at is not None
                    else now - state.last_seen <= idle):
                state.last_seen = now
                if tcp_flags[pid]:
                    if fl & 0x04:
                        flow_pop(key, None)
                    elif fl & 0x01:
                        state.fin_rev = True
                        if state.fin_fwd:
                            state.expires_at = now + time_wait
                passed_in_n += 1
                passed_in_b += size
                if has_router:
                    window_packets[window_index] = (
                        window_packets.get(window_index, 0) + 1
                    )
                    passed_in[series_bin] = passed_in.get(series_bin, 0) + size
                append(PASS)
                continue
            del flow_table[key]
        probability = static_p if static_p is not None else probability_at(now)
        if probability >= 1.0 or (probability > 0.0 and rng_random() < probability):
            dropped_in_n += 1
            dropped_in_b += size
            if has_router:
                window_packets[window_index] = window_packets.get(window_index, 0) + 1
                window_dropped[window_index] = window_dropped.get(window_index, 0) + 1
                if blocked is not None:
                    blocked[key] = now  # the SPI key *is* the canonical pair
            append(DROP)
        else:
            passed_in_n += 1
            passed_in_b += size
            if has_router:
                window_packets[window_index] = window_packets.get(window_index, 0) + 1
                passed_in[series_bin] = passed_in.get(series_bin, 0) + size
            append(PASS)

    flt._next_gc = next_gc
    flt.peak_flows = peak_flows
    _flush_stats(flt.stats, passed_out_n, passed_in_n, dropped_out_n,
                 dropped_in_n, passed_out_b, passed_in_b, dropped_out_b,
                 dropped_in_b)
    if blocked is not None:
        blocklist._next_gc = bl_next_gc
        blocklist.suppressed_packets += supp_n
        blocklist.suppressed_bytes += supp_b
    return verdicts


@register_kernel(SPIFilter)
class SPIKernel(FilterKernel):
    """Exact per-flow SPI state, fused (first batched SPI replay)."""

    def run_table(self, router: "EdgeRouter", table) -> List[Verdict]:
        return _spi_replay(router.filter, table, router)

    def filter_table(self, flt: SPIFilter, table) -> List[Verdict]:
        return _spi_replay(flt, table, None)


# ----------------------------------------------------------------------
# Counting Bloom — rotating 4-bit columns with close-aware deletion
# ----------------------------------------------------------------------


def _counting_replay(flt: CountingBitmapFilter, table, router) -> List[Verdict]:
    """Fused counting-Bloom replay; ``router=None`` = filter-level only.

    Hashes each flow at most once per direction per table
    (:meth:`PacketTable.seen_directions` + :meth:`HashFamily.indices_many`
    — all columns share one hash geometry), then runs the 4-bit nibble
    arithmetic directly on the columns' cell bytearrays.  Per-column
    ``added``/``saturations`` counters are staged locally and flushed
    *before* every rotation so the vacated column's ``clear()`` zeroes
    exactly what the per-packet path would have zeroed.  Deletion
    (FIN/RST) is rare and runs inline against the staged cells, reusing
    the flow's cached indices instead of re-hashing.
    """
    total = len(table)
    verdicts: List[Verdict] = []
    if router is not None:
        router.packets += total
    if total == 0:
        return verdicts

    PASS, DROP = Verdict.PASS, Verdict.DROP
    config = flt.config
    k = config.vectors
    hole = config.field_mode is FieldMode.HOLE_PUNCHING
    pairs = table.pairs
    n_pairs = len(pairs)

    # One hash per (flow, direction) actually present in the table.
    seen = table.seen_directions()
    keys: List[Tuple[int, ...]] = []
    slots: List[int] = []  # pid << 1 | is_outbound
    tcp_flags = bytearray(n_pairs)
    for pid, bits in enumerate(seen):
        if not bits:
            continue
        pair = pairs[pid]
        if pair[0] == IPPROTO_TCP:
            tcp_flags[pid] = 1
        if bits & 1:  # SEEN_OUTBOUND
            keys.append(socket_key(pair, Direction.OUTBOUND, hole))
            slots.append((pid << 1) | 1)
        if bits & 2:  # SEEN_INBOUND
            keys.append(socket_key(pair, Direction.INBOUND, hole))
            slots.append(pid << 1)
    key_out: List[Optional[Tuple[int, ...]]] = [None] * n_pairs
    key_in: List[Optional[Tuple[int, ...]]] = [None] * n_pairs
    idx_out: List[Tuple[int, ...]] = [()] * n_pairs
    idx_in: List[Tuple[int, ...]] = [()] * n_pairs
    columns = flt.columns
    for slot, key, indices in zip(
        slots, keys, columns[0].family.indices_many(keys)
    ):
        if slot & 1:
            key_out[slot >> 1] = key
            idx_out[slot >> 1] = indices
        else:
            key_in[slot >> 1] = key
            idx_in[slot >> 1] = indices

    cells_list = [column._cells for column in columns]
    half_closed = flt._half_closed
    rng_random = flt._rng.random
    controller = flt.drop_controller
    record_upload = controller.meter.record
    static_p: Optional[float] = (
        controller.policy.probability(0.0)
        if isinstance(controller.policy, StaticDropPolicy)
        else None
    )
    probability_at = controller.probability
    next_rotation = flt._next_rotation
    current_cells = cells_list[flt.idx]

    # Staged per-column counters (rotation clears the vacated column's,
    # so they must be flushed before every advance_to call).
    added = [0] * k
    saturations = [0] * k
    deleted = 0

    def flush_counts() -> None:
        for position in range(k):
            if added[position]:
                columns[position].added += added[position]
                added[position] = 0
            if saturations[position]:
                columns[position].saturations += saturations[position]
                saturations[position] = 0

    def delete_key(indices: Tuple[int, ...]) -> None:
        # CountingBitmapFilter._delete + CountingBloomFilter.remove,
        # reusing the cached indices: decrement until the key stops
        # testing positive in each column (saturated cells untouched).
        nonlocal deleted
        for column, cells in zip(columns, cells_list):
            for _ in range(16):
                member = True
                for index in indices:
                    byte = cells[index >> 1]
                    if not (byte >> 4 if index & 1 else byte & 0x0F):
                        member = False
                        break
                if not member:
                    break
                for index in indices:
                    position = index >> 1
                    byte = cells[position]
                    if index & 1:
                        count = byte >> 4
                        if count < 15:
                            cells[position] = (byte & 0x0F) | ((count - 1) << 4)
                    else:
                        count = byte & 0x0F
                        if count < 15:
                            cells[position] = (byte & 0xF0) | (count - 1)
                column.removed += 1
        deleted += 1

    passed_out_n = passed_in_n = dropped_out_n = dropped_in_n = 0
    passed_out_b = passed_in_b = dropped_out_b = dropped_in_b = 0
    append = verdicts.append

    has_router = router is not None
    blocked = None
    if has_router:
        offered_bins = router.offered._bins
        passed_bins = router.passed._bins
        offered_out = offered_bins[Direction.OUTBOUND]
        offered_in = offered_bins[Direction.INBOUND]
        passed_out = passed_bins[Direction.OUTBOUND]
        passed_in = passed_bins[Direction.INBOUND]
        window_packets = router.inbound_drops._packets
        window_dropped = router.inbound_drops._dropped
        series_bins, window_bins = _bin_columns(
            table.timestamps, total, router.offered.interval,
            router.inbound_drops.window,
        )
        blocklist = router.blocklist
        if blocklist is not None:
            blocked = blocklist._blocked
            retention = blocklist.retention
            bl_gc_interval = blocklist._gc_interval
            bl_next_gc = blocklist._next_gc
            canon_cache: List[Optional[object]] = [None] * n_pairs
            supp_n = supp_b = 0
    else:
        series_bins = window_bins = repeat(0)

    for now, size, is_out, pid, fl, series_bin, window_index in zip(
        table.timestamps, table.sizes, table.outbound, table.pair_ids,
        table.flags, series_bins, window_bins,
    ):
        if has_router:
            if is_out:
                offered_out[series_bin] = offered_out.get(series_bin, 0) + size
            else:
                offered_in[series_bin] = offered_in.get(series_bin, 0) + size
            if blocked is not None:
                if retention is not None:
                    if bl_next_gc is None:
                        bl_next_gc = now + bl_gc_interval
                    elif now >= bl_next_gc:
                        bl_next_gc = now + bl_gc_interval
                        horizon = now - retention
                        for stale in [
                            entry for entry, stamped in blocked.items()
                            if stamped < horizon
                        ]:
                            del blocked[stale]
                canon = canon_cache[pid]
                if canon is None:
                    canon = canon_cache[pid] = pairs[pid].canonical
                stamped = blocked.get(canon)
                if stamped is not None:
                    if retention is not None and now - stamped > retention:
                        del blocked[canon]
                    else:
                        blocked[canon] = now
                        supp_n += 1
                        supp_b += size
                        append(DROP)
                        if not is_out:
                            window_packets[window_index] = (
                                window_packets.get(window_index, 0) + 1
                            )
                            window_dropped[window_index] = (
                                window_dropped.get(window_index, 0) + 1
                            )
                        continue

        # CountingBitmapFilter.advance_to — rare; staged counters must
        # land before rotate() clears the vacated column.
        if next_rotation is None or now >= next_rotation:
            flush_counts()
            flt.advance_to(now)
            next_rotation = flt._next_rotation
            current_cells = cells_list[flt.idx]

        if is_out:
            indices = idx_out[pid]
            for position in range(k):
                cells = cells_list[position]
                sat = 0
                for index in indices:
                    byte_pos = index >> 1
                    byte = cells[byte_pos]
                    if index & 1:
                        count = byte >> 4
                        if count < 15:
                            cells[byte_pos] = (byte & 0x0F) | ((count + 1) << 4)
                        else:
                            sat += 1
                    else:
                        count = byte & 0x0F
                        if count < 15:
                            cells[byte_pos] = (byte & 0xF0) | (count + 1)
                        else:
                            sat += 1
                added[position] += 1
                if sat:
                    saturations[position] += sat
            record_upload(now, size)
            if tcp_flags[pid]:
                if fl & 0x04:  # RST
                    delete_key(indices)
                    half_closed.pop(key_out[pid], None)
                elif fl & 0x01:  # FIN
                    key = key_out[pid]
                    if key in half_closed:
                        del half_closed[key]
                        delete_key(indices)
                    else:
                        half_closed[key] = now
            passed_out_n += 1
            passed_out_b += size
            if has_router:
                passed_out[series_bin] = passed_out.get(series_bin, 0) + size
            append(PASS)
            continue

        indices = idx_in[pid]
        hit = True
        for index in indices:
            byte = current_cells[index >> 1]
            if not (byte >> 4 if index & 1 else byte & 0x0F):
                hit = False
                break
        if hit:
            if tcp_flags[pid]:
                if fl & 0x04:
                    delete_key(indices)
                    half_closed.pop(key_in[pid], None)
                elif fl & 0x01:
                    key = key_in[pid]
                    if key in half_closed:
                        del half_closed[key]
                        delete_key(indices)
                    else:
                        half_closed[key] = now
            passed_in_n += 1
            passed_in_b += size
            if has_router:
                window_packets[window_index] = window_packets.get(window_index, 0) + 1
                passed_in[series_bin] = passed_in.get(series_bin, 0) + size
            append(PASS)
            continue
        probability = static_p if static_p is not None else probability_at(now)
        # Unguarded draw — the counting filter's historical consumption
        # order draws even at P_d = 0 (unlike SPI/RED's guarded form);
        # the kernel reproduces it draw-for-draw.
        if probability >= 1.0 or rng_random() < probability:
            dropped_in_n += 1
            dropped_in_b += size
            if has_router:
                window_packets[window_index] = window_packets.get(window_index, 0) + 1
                window_dropped[window_index] = window_dropped.get(window_index, 0) + 1
                if blocked is not None:
                    canon = canon_cache[pid]
                    if canon is None:
                        canon = canon_cache[pid] = pairs[pid].canonical
                    blocked[canon] = now
            append(DROP)
        else:
            passed_in_n += 1
            passed_in_b += size
            if has_router:
                window_packets[window_index] = window_packets.get(window_index, 0) + 1
                passed_in[series_bin] = passed_in.get(series_bin, 0) + size
            append(PASS)

    flush_counts()
    flt.deleted_on_close += deleted
    _flush_stats(flt.stats, passed_out_n, passed_in_n, dropped_out_n,
                 dropped_in_n, passed_out_b, passed_in_b, dropped_out_b,
                 dropped_in_b)
    if blocked is not None:
        blocklist._next_gc = bl_next_gc
        blocklist.suppressed_packets += supp_n
        blocklist.suppressed_bytes += supp_b
    return verdicts


@register_kernel(CountingBitmapFilter)
class CountingKernel(FilterKernel):
    """Rotating counting-Bloom columns with close-aware deletion, fused."""

    def run_table(self, router: "EdgeRouter", table) -> List[Verdict]:
        return _counting_replay(router.filter, table, router)

    def filter_table(self, flt: CountingBitmapFilter, table) -> List[Verdict]:
        return _counting_replay(flt, table, None)


# ----------------------------------------------------------------------
# Token bucket — three floats of state
# ----------------------------------------------------------------------


def _token_bucket_replay(flt: TokenBucketFilter, table, router) -> List[Verdict]:
    """Fused token-bucket replay; ``router=None`` = filter-level only."""
    total = len(table)
    verdicts: List[Verdict] = []
    if router is not None:
        router.packets += total
    if total == 0:
        return verdicts

    PASS, DROP = Verdict.PASS, Verdict.DROP
    pairs = table.pairs
    bucket = flt.bucket
    rate = bucket.rate
    burst = bucket.burst
    tokens = bucket._tokens
    last = bucket._last
    policed_out = 1 if flt.direction is Direction.OUTBOUND else 0

    passed_out_n = passed_in_n = dropped_out_n = dropped_in_n = 0
    passed_out_b = passed_in_b = dropped_out_b = dropped_in_b = 0
    append = verdicts.append

    has_router = router is not None
    blocked = None
    if has_router:
        offered_bins = router.offered._bins
        passed_bins = router.passed._bins
        offered_out = offered_bins[Direction.OUTBOUND]
        offered_in = offered_bins[Direction.INBOUND]
        passed_out = passed_bins[Direction.OUTBOUND]
        passed_in = passed_bins[Direction.INBOUND]
        window_packets = router.inbound_drops._packets
        window_dropped = router.inbound_drops._dropped
        series_bins, window_bins = _bin_columns(
            table.timestamps, total, router.offered.interval,
            router.inbound_drops.window,
        )
        blocklist = router.blocklist
        if blocklist is not None:
            blocked = blocklist._blocked
            retention = blocklist.retention
            bl_gc_interval = blocklist._gc_interval
            bl_next_gc = blocklist._next_gc
            canon_cache: List[Optional[object]] = [None] * len(pairs)
            supp_n = supp_b = 0
    else:
        series_bins = window_bins = repeat(0)

    for now, size, is_out, pid, series_bin, window_index in zip(
        table.timestamps, table.sizes, table.outbound, table.pair_ids,
        series_bins, window_bins,
    ):
        if has_router:
            if is_out:
                offered_out[series_bin] = offered_out.get(series_bin, 0) + size
            else:
                offered_in[series_bin] = offered_in.get(series_bin, 0) + size
            if blocked is not None:
                if retention is not None:
                    if bl_next_gc is None:
                        bl_next_gc = now + bl_gc_interval
                    elif now >= bl_next_gc:
                        bl_next_gc = now + bl_gc_interval
                        horizon = now - retention
                        for stale in [
                            entry for entry, stamped in blocked.items()
                            if stamped < horizon
                        ]:
                            del blocked[stale]
                canon = canon_cache[pid]
                if canon is None:
                    canon = canon_cache[pid] = pairs[pid].canonical
                stamped = blocked.get(canon)
                if stamped is not None:
                    if retention is not None and now - stamped > retention:
                        del blocked[canon]
                    else:
                        blocked[canon] = now
                        supp_n += 1
                        supp_b += size
                        append(DROP)
                        if not is_out:
                            window_packets[window_index] = (
                                window_packets.get(window_index, 0) + 1
                            )
                            window_dropped[window_index] = (
                                window_dropped.get(window_index, 0) + 1
                            )
                        continue

        if is_out != policed_out:
            ok = True
        else:
            # Inlined TokenBucket.consume.
            if last is None:
                last = now
            elif now > last:
                tokens = min(burst, tokens + (now - last) * rate)
                last = now
            if tokens >= size:
                tokens -= size
                ok = True
            else:
                ok = False

        if ok:
            if is_out:
                passed_out_n += 1
                passed_out_b += size
                if has_router:
                    passed_out[series_bin] = passed_out.get(series_bin, 0) + size
            else:
                passed_in_n += 1
                passed_in_b += size
                if has_router:
                    window_packets[window_index] = (
                        window_packets.get(window_index, 0) + 1
                    )
                    passed_in[series_bin] = passed_in.get(series_bin, 0) + size
            append(PASS)
        else:
            if is_out:
                dropped_out_n += 1
                dropped_out_b += size
            else:
                dropped_in_n += 1
                dropped_in_b += size
                if has_router:
                    window_packets[window_index] = (
                        window_packets.get(window_index, 0) + 1
                    )
                    window_dropped[window_index] = (
                        window_dropped.get(window_index, 0) + 1
                    )
                    if blocked is not None:
                        canon = canon_cache[pid]
                        if canon is None:
                            canon = canon_cache[pid] = pairs[pid].canonical
                        blocked[canon] = now
            append(DROP)

    bucket._tokens = tokens
    bucket._last = last
    _flush_stats(flt.stats, passed_out_n, passed_in_n, dropped_out_n,
                 dropped_in_n, passed_out_b, passed_in_b, dropped_out_b,
                 dropped_in_b)
    if blocked is not None:
        blocklist._next_gc = bl_next_gc
        blocklist.suppressed_packets += supp_n
        blocklist.suppressed_bytes += supp_b
    return verdicts


@register_kernel(TokenBucketFilter)
class TokenBucketKernel(FilterKernel):
    """One-direction token-bucket policing, fused."""

    def run_table(self, router: "EdgeRouter", table) -> List[Verdict]:
        return _token_bucket_replay(router.filter, table, router)

    def filter_table(self, flt: TokenBucketFilter, table) -> List[Verdict]:
        return _token_bucket_replay(flt, table, None)


# ----------------------------------------------------------------------
# RED policer — meter trajectory depends on drops, so the loop stays
# sequential; the Equation-1 ramp is inlined.
# ----------------------------------------------------------------------


def _red_replay(flt: RedPolicerFilter, table, router) -> List[Verdict]:
    """Fused RED-policer replay; ``router=None`` = filter-level only.

    ``P_d`` is read from the meter *before* the verdict and the meter is
    fed only by passed policed-direction packets, so the probability
    trajectory depends on earlier drop decisions — the loop must stay
    strictly sequential (no precomputed probability column, unlike the
    bitmap filter whose meter sees only outbound traffic).
    """
    total = len(table)
    verdicts: List[Verdict] = []
    if router is not None:
        router.packets += total
    if total == 0:
        return verdicts

    PASS, DROP = Verdict.PASS, Verdict.DROP
    pairs = table.pairs
    policy = flt.policy
    meter = flt.meter
    rate_bps = meter.rate_bps
    meter_record = meter.record
    rng_random = flt._rng.random
    policed_out = 1 if flt.direction is Direction.OUTBOUND else 0
    # A static policy ignores the measured rate; the lazy-evicting
    # ``rate_bps`` read is skipped (it never changes a later reading).
    static_p: Optional[float] = (
        policy.probability(0.0) if isinstance(policy, StaticDropPolicy) else None
    )
    if isinstance(policy, RedDropPolicy):
        red_low: Optional[float] = policy.low
        red_high = policy.high
    else:
        red_low = None
    probability_of = policy.probability

    passed_out_n = passed_in_n = dropped_out_n = dropped_in_n = 0
    passed_out_b = passed_in_b = dropped_out_b = dropped_in_b = 0
    append = verdicts.append

    has_router = router is not None
    blocked = None
    if has_router:
        offered_bins = router.offered._bins
        passed_bins = router.passed._bins
        offered_out = offered_bins[Direction.OUTBOUND]
        offered_in = offered_bins[Direction.INBOUND]
        passed_out = passed_bins[Direction.OUTBOUND]
        passed_in = passed_bins[Direction.INBOUND]
        window_packets = router.inbound_drops._packets
        window_dropped = router.inbound_drops._dropped
        series_bins, window_bins = _bin_columns(
            table.timestamps, total, router.offered.interval,
            router.inbound_drops.window,
        )
        blocklist = router.blocklist
        if blocklist is not None:
            blocked = blocklist._blocked
            retention = blocklist.retention
            bl_gc_interval = blocklist._gc_interval
            bl_next_gc = blocklist._next_gc
            canon_cache: List[Optional[object]] = [None] * len(pairs)
            supp_n = supp_b = 0
    else:
        series_bins = window_bins = repeat(0)

    for now, size, is_out, pid, series_bin, window_index in zip(
        table.timestamps, table.sizes, table.outbound, table.pair_ids,
        series_bins, window_bins,
    ):
        if has_router:
            if is_out:
                offered_out[series_bin] = offered_out.get(series_bin, 0) + size
            else:
                offered_in[series_bin] = offered_in.get(series_bin, 0) + size
            if blocked is not None:
                if retention is not None:
                    if bl_next_gc is None:
                        bl_next_gc = now + bl_gc_interval
                    elif now >= bl_next_gc:
                        bl_next_gc = now + bl_gc_interval
                        horizon = now - retention
                        for stale in [
                            entry for entry, stamped in blocked.items()
                            if stamped < horizon
                        ]:
                            del blocked[stale]
                canon = canon_cache[pid]
                if canon is None:
                    canon = canon_cache[pid] = pairs[pid].canonical
                stamped = blocked.get(canon)
                if stamped is not None:
                    if retention is not None and now - stamped > retention:
                        del blocked[canon]
                    else:
                        blocked[canon] = now
                        supp_n += 1
                        supp_b += size
                        append(DROP)
                        if not is_out:
                            window_packets[window_index] = (
                                window_packets.get(window_index, 0) + 1
                            )
                            window_dropped[window_index] = (
                                window_dropped.get(window_index, 0) + 1
                            )
                        continue

        if is_out != policed_out:
            ok = True
        else:
            if static_p is not None:
                probability = static_p
            else:
                throughput = rate_bps(now)
                if red_low is not None:
                    # Inlined RedDropPolicy.probability (Equation 1).
                    if throughput <= red_low:
                        probability = 0.0
                    elif throughput >= red_high:
                        probability = 1.0
                    else:
                        probability = (throughput - red_low) / (red_high - red_low)
                else:
                    probability = probability_of(throughput)
            if probability >= 1.0 or (
                probability > 0.0 and rng_random() < probability
            ):
                ok = False
            else:
                meter_record(now, size)
                ok = True

        if ok:
            if is_out:
                passed_out_n += 1
                passed_out_b += size
                if has_router:
                    passed_out[series_bin] = passed_out.get(series_bin, 0) + size
            else:
                passed_in_n += 1
                passed_in_b += size
                if has_router:
                    window_packets[window_index] = (
                        window_packets.get(window_index, 0) + 1
                    )
                    passed_in[series_bin] = passed_in.get(series_bin, 0) + size
            append(PASS)
        else:
            if is_out:
                dropped_out_n += 1
                dropped_out_b += size
            else:
                dropped_in_n += 1
                dropped_in_b += size
                if has_router:
                    window_packets[window_index] = (
                        window_packets.get(window_index, 0) + 1
                    )
                    window_dropped[window_index] = (
                        window_dropped.get(window_index, 0) + 1
                    )
                    if blocked is not None:
                        canon = canon_cache[pid]
                        if canon is None:
                            canon = canon_cache[pid] = pairs[pid].canonical
                        blocked[canon] = now
            append(DROP)

    _flush_stats(flt.stats, passed_out_n, passed_in_n, dropped_out_n,
                 dropped_in_n, passed_out_b, passed_in_b, dropped_out_b,
                 dropped_in_b)
    if blocked is not None:
        blocklist._next_gc = bl_next_gc
        blocklist.suppressed_packets += supp_n
        blocklist.suppressed_bytes += supp_b
    return verdicts


@register_kernel(RedPolicerFilter)
class RedPolicerKernel(FilterKernel):
    """Equation-1 policing of one direction, fused."""

    def run_table(self, router: "EdgeRouter", table) -> List[Verdict]:
        return _red_replay(router.filter, table, router)

    def filter_table(self, flt: RedPolicerFilter, table) -> List[Verdict]:
        return _red_replay(flt, table, None)


# ----------------------------------------------------------------------
# Chain — kernel composition over a shared verdict mask
# ----------------------------------------------------------------------


def _member_table(member: PacketFilter, sub) -> List[Verdict]:
    """One chain member over a sub-table, through its kernel if it has one."""
    kernel = KERNELS.get(type(member))
    if kernel is not None:
        return kernel.filter_table(member, sub)
    return member.process_batch(sub.to_packets())


@register_kernel(FilterChain)
class ChainKernel(FilterKernel):
    """First-DROP-wins composition as staged member kernels.

    Members keep independent state and RNG streams, and member *i* sees
    exactly the packets that survived members ``< i`` in timestamp order
    — so running member 1 over the whole table, member 2 over the
    survivors, and so on is bit-identical to the interleaved per-packet
    chain walk.  With a blocklist the staging breaks down (a member-drop
    inside the batch must suppress the connection's *later* packets
    before member 1 sees them), so :meth:`run_table` declines and the
    router falls back to its exact per-packet loop.
    """

    def run_table(self, router: "EdgeRouter", table) -> Optional[List[Verdict]]:
        if router.blocklist is not None:
            return None
        total = len(table)
        router.packets += total
        if total == 0:
            return []
        verdicts = self.filter_table(router.filter, table)

        PASS = Verdict.PASS
        offered_bins = router.offered._bins
        passed_bins = router.passed._bins
        offered_out = offered_bins[Direction.OUTBOUND]
        offered_in = offered_bins[Direction.INBOUND]
        passed_out = passed_bins[Direction.OUTBOUND]
        passed_in = passed_bins[Direction.INBOUND]
        window_packets = router.inbound_drops._packets
        window_dropped = router.inbound_drops._dropped
        series_bins, window_bins = _bin_columns(
            table.timestamps, total, router.offered.interval,
            router.inbound_drops.window,
        )
        for verdict, size, is_out, series_bin, window_index in zip(
            verdicts, table.sizes, table.outbound, series_bins, window_bins,
        ):
            if is_out:
                offered_out[series_bin] = offered_out.get(series_bin, 0) + size
                if verdict is PASS:
                    passed_out[series_bin] = passed_out.get(series_bin, 0) + size
            else:
                offered_in[series_bin] = offered_in.get(series_bin, 0) + size
                window_packets[window_index] = (
                    window_packets.get(window_index, 0) + 1
                )
                if verdict is PASS:
                    passed_in[series_bin] = passed_in.get(series_bin, 0) + size
                else:
                    window_dropped[window_index] = (
                        window_dropped.get(window_index, 0) + 1
                    )
        return verdicts

    def run_packets(
        self, router: "EdgeRouter", packets: Sequence[Packet]
    ) -> Optional[List[Verdict]]:
        if router.blocklist is not None:
            return None  # decline before paying the columnarization
        return self.run_table(router, PacketTable.from_packets(packets))

    def filter_table(self, flt: FilterChain, table) -> List[Verdict]:
        total = len(table)
        PASS, DROP = Verdict.PASS, Verdict.DROP
        verdicts: List[Verdict] = [PASS] * total
        live: Optional[List[int]] = None  # original positions still passing
        sub = table
        for member in flt.filters:
            member_verdicts = _member_table(member, sub)
            survivors: List[int] = []
            s_append = survivors.append
            if live is None:
                for position, verdict in enumerate(member_verdicts):
                    if verdict is DROP:
                        verdicts[position] = DROP
                    else:
                        s_append(position)
            else:
                for position, verdict in enumerate(member_verdicts):
                    original = live[position]
                    if verdict is DROP:
                        verdicts[original] = DROP
                    else:
                        s_append(original)
            if len(survivors) == len(member_verdicts):
                continue  # nothing dropped — reuse the same sub-table
            live = survivors
            if not survivors:
                break
            sub = table.select(survivors)

        # The chain's own aggregate accounting (members kept their own).
        passed_out_n = passed_in_n = dropped_out_n = dropped_in_n = 0
        passed_out_b = passed_in_b = dropped_out_b = dropped_in_b = 0
        for verdict, size, is_out in zip(verdicts, table.sizes, table.outbound):
            if verdict is PASS:
                if is_out:
                    passed_out_n += 1
                    passed_out_b += size
                else:
                    passed_in_n += 1
                    passed_in_b += size
            else:
                if is_out:
                    dropped_out_n += 1
                    dropped_out_b += size
                else:
                    dropped_in_n += 1
                    dropped_in_b += size
        _flush_stats(flt.stats, passed_out_n, passed_in_n, dropped_out_n,
                     dropped_in_n, passed_out_b, passed_in_b, dropped_out_b,
                     dropped_in_b)
        return verdicts
