"""Closed-loop simulation: filtering with traffic feedback.

Section 5.3's caveat: "Since the simulation is done with replayed packet
trace, as the simulation is unable to block the outbound connections that
may [be] triggered by previously blocked inbound requests, the effect of
the traffic filtering is limited.  We believe that the filter can perform
better in a real network environment."

This module tests that belief.  Instead of replaying a fixed packet
stream, it simulates at the *connection* level: when a connection's
opening packets are refused by the filter, the connection never happens —
no handshake completion, no upload triggered, exactly as in a live
deployment.  Mid-stream losses of established connections are treated as
recoverable (TCP retransmission), so only admission is gated.

The result recovers the clean monotone relationship between the
Equation 1 thresholds and the bounded uplink throughput that open-loop
replay obscures.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.hashing import derive_seed
from repro.filters.base import PacketFilter, Verdict
from repro.net.packet import Packet
from repro.sim.metrics import ThroughputSeries
from repro.sim.pipeline import PipelineConfig, ReplayPipeline, ReplayResult
from repro.workload.apps import ConnectionSpec, connection_packets


def retry_stream_seed(seed: int, ident: int, attempt: int) -> int:
    """RNG stream for retry ``attempt`` of connection ``ident``.

    A nested :func:`derive_seed` chain keeps retry streams in their own
    splitmix64 domain.  (The previous ``ident + 1_000_000`` additive
    offset collided with the primary per-spec streams once a workload
    carried a million connections.)
    """
    return derive_seed(derive_seed(seed, ident), attempt)


@dataclass
class ClosedLoopResult:
    """Outcome of a closed-loop run."""

    #: Traffic that actually traversed the link (admitted connections).
    passed: ThroughputSeries
    #: Traffic the workload *would* have offered with no filter at all.
    offered: ThroughputSeries
    connections_total: int = 0
    connections_admitted: int = 0
    connections_refused: int = 0
    #: Refused connections by initiator ("client"/"remote").
    refused_by_initiator: Dict[str, int] = field(default_factory=dict)
    #: Trace timestamp of every refusal, in refusal order — when the
    #: filter pushed back, not just how often (reaction-latency input
    #: for closed-loop consumers like the swarm plane).
    refusal_times: List[float] = field(default_factory=list)
    packets_sent: int = 0
    #: The underlying engine result — same shape as open-loop replay
    #: (router with offered/passed series, drop windows, blocklist).
    replay: Optional[ReplayResult] = None

    @property
    def admission_rate(self) -> float:
        """Fraction of offered connections that established."""
        if self.connections_total == 0:
            return 0.0
        return self.connections_admitted / self.connections_total


class ClosedLoopSimulator:
    """Connection-level simulation with admission feedback.

    ``admission_window`` is how many packets into a connection a drop
    still kills it (the handshake / first request); beyond that the
    connection is considered established and a drop is a recoverable
    packet loss.  A refused connection may retry once after
    ``retry_after`` seconds with probability ``retry_probability``
    (P2P software retries aggressively; the retry meets the filter
    again and usually dies again under load).
    """

    def __init__(
        self,
        packet_filter: PacketFilter,
        admission_window: int = 3,
        retry_probability: float = 0.0,
        retry_after: float = 30.0,
        max_retries: int = 2,
        throughput_interval: float = 1.0,
        seed: int = 0,
        use_blocklist: bool = False,
    ) -> None:
        if admission_window < 1:
            raise ValueError(f"admission_window must be >= 1: {admission_window}")
        if not 0.0 <= retry_probability <= 1.0:
            raise ValueError(f"retry_probability out of [0,1]: {retry_probability}")
        if retry_after <= 0:
            raise ValueError(f"retry_after must be positive: {retry_after}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative: {max_retries}")
        self.filter = packet_filter
        self.admission_window = admission_window
        self.retry_probability = retry_probability
        self.retry_after = retry_after
        self.max_retries = max_retries
        self.throughput_interval = throughput_interval
        self.use_blocklist = use_blocklist
        self._rng = random.Random(seed)

    def run(self, specs: List[ConnectionSpec], seed: int = 0) -> ClosedLoopResult:
        """Simulate all connections, returning throughput accounting.

        Packet schedules are expanded deterministically per spec (seeded
        from ``seed`` and the spec's index) so runs are reproducible.

        Packets flow through the same :class:`~repro.sim.pipeline.ReplayPipeline`
        stages as open-loop replay — the closed loop is just a different
        packet *source*, feeding the engine one packet at a time because
        each verdict feeds back into which packets exist at all.  (That
        feedback is also why this simulator is inherently sequential: a
        batch's later packets cannot be known until its earlier verdicts
        are, so no batched or parallel backend applies.)  The blocklist
        stage is off by default — admission feedback already kills refused
        connections, which is the job blocked-σ persistence approximates
        in open-loop replay.
        """
        pipeline = ReplayPipeline(PipelineConfig(
            packet_filter=self.filter,
            use_blocklist=self.use_blocklist,
            throughput_interval=self.throughput_interval,
        ))
        result = ClosedLoopResult(
            passed=pipeline.router.passed,
            offered=pipeline.router.offered,
        )
        ordered = sorted(specs, key=lambda spec: spec.start)
        result.connections_total = len(ordered)

        # Heap of (next_packet_time, tiebreak, connection state).
        heap: List[Tuple[float, int, "_LiveConnection"]] = []
        admit_index = 0
        counter = 0
        retries: List[Tuple[float, int, ConnectionSpec, int]] = []

        def admit(spec: ConnectionSpec, index: int, attempts: int = 0) -> None:
            nonlocal counter
            stream = (
                derive_seed(seed, index)
                if attempts == 0
                else retry_stream_seed(seed, index, attempts)
            )
            schedule = connection_packets(spec, random.Random(stream))
            if not schedule:
                return
            live = _LiveConnection(spec, schedule, attempts)
            heapq.heappush(heap, (schedule[0].timestamp, counter, live))
            counter += 1

        while heap or admit_index < len(ordered) or retries:
            # Admit new arrivals and due retries before the next event.
            next_event = heap[0][0] if heap else float("inf")
            while admit_index < len(ordered) and ordered[admit_index].start <= next_event:
                admit(ordered[admit_index], admit_index)
                admit_index += 1
                next_event = heap[0][0] if heap else float("inf")
            while retries and retries[0][0] <= next_event:
                _, index, spec, attempts = heapq.heappop(retries)
                admit(spec, index, attempts)
                next_event = heap[0][0] if heap else float("inf")
            if not heap:
                if admit_index < len(ordered):
                    admit(ordered[admit_index], admit_index)
                    admit_index += 1
                    continue
                if retries:
                    _, index, spec, attempts = heapq.heappop(retries)
                    admit(spec, index, attempts)
                    continue
                break

            _, ident, live = heapq.heappop(heap)
            packet = live.schedule[live.position]

            verdict = pipeline.process(packet)
            if verdict is Verdict.PASS:
                live.position += 1
                if live.position >= len(live.schedule):
                    if not live.counted:
                        result.connections_admitted += 1
                else:
                    if live.position > self.admission_window and not live.counted:
                        result.connections_admitted += 1
                        live.counted = True
                    heapq.heappush(
                        heap, (live.schedule[live.position].timestamp, ident, live)
                    )
            else:
                if live.position < self.admission_window and not live.counted:
                    # Admission refused: the connection never establishes.
                    result.connections_refused += 1
                    result.refusal_times.append(packet.timestamp)
                    initiator = live.spec.initiator.value
                    result.refused_by_initiator[initiator] = (
                        result.refused_by_initiator.get(initiator, 0) + 1
                    )
                    if (
                        live.attempts < self.max_retries
                        and self._rng.random() < self.retry_probability
                    ):
                        heapq.heappush(
                            retries,
                            (
                                packet.timestamp + self.retry_after,
                                ident,
                                _shifted(live.spec, packet.timestamp + self.retry_after),
                                live.attempts + 1,
                            ),
                        )
                else:
                    # Established connection: loss is recoverable; skip
                    # the packet and carry on.
                    live.position += 1
                    if live.position < len(live.schedule):
                        heapq.heappush(
                            heap, (live.schedule[live.position].timestamp, ident, live)
                        )
        result.replay = pipeline.finalize()
        result.packets_sent = result.replay.packets
        return result


class _LiveConnection:
    __slots__ = ("spec", "schedule", "position", "counted", "attempts")

    def __init__(
        self, spec: ConnectionSpec, schedule: List[Packet], attempts: int = 0
    ) -> None:
        self.spec = spec
        self.schedule = schedule
        self.position = 0
        self.counted = False
        self.attempts = attempts


def _shifted(spec: ConnectionSpec, new_start: float) -> ConnectionSpec:
    """Clone a spec at a later start time (a retry attempt)."""
    from dataclasses import replace

    return replace(spec, start=new_start)
