"""Measurement series collected during replay.

:class:`ThroughputSeries` bins passed bytes per direction into fixed
intervals — the data behind Figure 9's uplink/downlink bands.
:class:`DropRateSampler` bins verdicts per interval — the data behind
Figure 8's per-window drop-rate scatter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.net.packet import Direction, Packet


class ThroughputSeries:
    """Per-interval byte counters for each direction."""

    def __init__(self, interval: float = 1.0) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self.interval = interval
        self._bins: Dict[Direction, Dict[int, int]] = {
            Direction.OUTBOUND: {},
            Direction.INBOUND: {},
        }

    def record(self, packet: Packet) -> None:
        """Account one passed packet into its time bin."""
        if packet.direction is None:
            raise ValueError("packet has no direction set")
        index = int(packet.timestamp / self.interval)
        bins = self._bins[packet.direction]
        bins[index] = bins.get(index, 0) + packet.size

    def series_mbps(self, direction: Direction) -> List[Tuple[float, float]]:
        """(time, Mbps) points, one per non-empty interval."""
        bins = self._bins[direction]
        return [
            (index * self.interval, count * 8.0 / self.interval / 1e6)
            for index, count in sorted(bins.items())
        ]

    def span_rates_mbps(self, direction: Direction) -> List[float]:
        """Per-interval rates over the observed span, one value per interval
        from the first to the last busy bin *including the empty ones* — a
        bursty trace's silent intervals are real 0-Mbps observations, not
        missing data.

        This materializes one float per interval of the span, which is
        fine for trace-time replays but explodes on live wall-clock series
        whose span may cover a restart gap of days; :meth:`mean_mbps` and
        :meth:`quantile_mbps` therefore count the empty intervals
        arithmetically instead of calling this.
        """
        bins = self._bins[direction]
        if not bins:
            return []
        first, last = min(bins), max(bins)
        scale = 8.0 / self.interval / 1e6
        return [bins.get(index, 0) * scale for index in range(first, last + 1)]

    def span_intervals(self, direction: Direction) -> int:
        """Number of intervals in the observed span (first to last busy
        bin inclusive), counting the silent ones."""
        bins = self._bins[direction]
        if not bins:
            return 0
        return max(bins) - min(bins) + 1

    def mean_mbps(self, direction: Direction) -> float:
        """Mean rate over the observed span (first to last busy bin).

        Empty intervals count as 0-Mbps observations but are never
        materialized — a live series fed sparse wall-clock time (a
        service that sat idle for hours, or resumed after a restart gap)
        has a huge span and few busy bins, and building one list entry
        per silent interval would exhaust memory before summing zeros.
        """
        span = self.span_intervals(direction)
        if span == 0:
            return 0.0
        total = sum(self._bins[direction].values())
        return total * 8.0 / self.interval / 1e6 / span

    def peak_mbps(self, direction: Direction) -> float:
        """Rate of the busiest interval."""
        bins = self._bins[direction]
        if not bins:
            return 0.0
        return max(bins.values()) * 8.0 / self.interval / 1e6

    def quantile_mbps(self, direction: Direction, q: float) -> float:
        """q-quantile of per-interval rates (0.95 is robust to replay
        warm-up spikes when checking the Figure 9 bound).

        Zero-traffic intervals between the first and last busy bin count
        as 0-Mbps observations; skipping them would bias every quantile of
        a bursty trace upward.  They are counted arithmetically, not
        materialized: only the busy bins are sorted, and a rank that
        lands inside the silent run is 0.0 by construction — so a live
        wall-clock series with a restart gap of days costs the same as a
        dense trace.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of [0,1]: {q}")
        span = self.span_intervals(direction)
        if span == 0:
            return 0.0
        bins = self._bins[direction]
        rank = min(span - 1, int(q * span))
        zeros = span - len(bins)
        if rank < zeros:
            return 0.0
        busy = sorted(bins.values())
        return busy[rank - zeros] * 8.0 / self.interval / 1e6

    def total_bytes(self, direction: Direction) -> int:
        """All bytes recorded for a direction."""
        return sum(self._bins[direction].values())

    def merge(self, other: "ThroughputSeries") -> "ThroughputSeries":
        """Accumulate another series' bins into this one (in place).

        Bins are keyed by absolute trace time, so merging per-worker
        series from a partitioned replay reproduces the bins a single
        replay of the whole stream would have produced.  Returns ``self``
        so merges chain.
        """
        if other.interval != self.interval:
            raise ValueError(
                f"interval mismatch: {self.interval} vs {other.interval}"
            )
        for direction, bins in other._bins.items():
            mine = self._bins[direction]
            for index, count in bins.items():
                mine[index] = mine.get(index, 0) + count
        return self

    def __add__(self, other: "ThroughputSeries") -> "ThroughputSeries":
        merged = ThroughputSeries(interval=self.interval)
        return merged.merge(self).merge(other)

    def snapshot(self) -> dict:
        """Serializable bin contents (JSON-safe: bins as [index, bytes]
        rows, keyed by direction name)."""
        return {
            "interval": self.interval,
            "bins": {
                direction.value: sorted(bins.items())
                for direction, bins in self._bins.items()
            },
        }

    @classmethod
    def restore(cls, snapshot: dict) -> "ThroughputSeries":
        series = cls(interval=snapshot["interval"])
        for key, rows in snapshot["bins"].items():
            bins = series._bins[Direction(key)]
            for index, count in rows:
                bins[index] = count
        return series


@dataclass
class DropRateSample:
    """One time window's packet accounting for one filter."""

    window_start: float
    packets: int
    dropped: int

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.packets if self.packets else 0.0


class DropRateSampler:
    """Per-window drop rates (inbound), for Figure 8 scatter plots."""

    def __init__(self, window: float = 10.0) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        self.window = window
        self._packets: Dict[int, int] = {}
        self._dropped: Dict[int, int] = {}

    def record(self, timestamp: float, dropped: bool) -> None:
        """Account one inbound verdict into its window."""
        index = int(timestamp / self.window)
        self._packets[index] = self._packets.get(index, 0) + 1
        if dropped:
            self._dropped[index] = self._dropped.get(index, 0) + 1

    def samples(self) -> List[DropRateSample]:
        """Per-window samples in time order."""
        return [
            DropRateSample(
                window_start=index * self.window,
                packets=count,
                dropped=self._dropped.get(index, 0),
            )
            for index, count in sorted(self._packets.items())
        ]

    def overall_drop_rate(self) -> float:
        """Aggregate drop rate across all windows."""
        total = sum(self._packets.values())
        if total == 0:
            return 0.0
        return sum(self._dropped.values()) / total

    def merge(self, other: "DropRateSampler") -> "DropRateSampler":
        """Accumulate another sampler's windows into this one (in place).

        Windows are keyed by absolute trace time, so per-worker samplers
        from a partitioned replay merge into exactly the windows a single
        replay would have filled.  Returns ``self`` so merges chain.
        """
        if other.window != self.window:
            raise ValueError(f"window mismatch: {self.window} vs {other.window}")
        for index, count in other._packets.items():
            self._packets[index] = self._packets.get(index, 0) + count
        for index, count in other._dropped.items():
            self._dropped[index] = self._dropped.get(index, 0) + count
        return self

    def __add__(self, other: "DropRateSampler") -> "DropRateSampler":
        merged = DropRateSampler(window=self.window)
        return merged.merge(self).merge(other)

    def snapshot(self) -> dict:
        """Serializable window contents (JSON-safe [index, count] rows)."""
        return {
            "window": self.window,
            "packets": sorted(self._packets.items()),
            "dropped": sorted(self._dropped.items()),
        }

    @classmethod
    def restore(cls, snapshot: dict) -> "DropRateSampler":
        sampler = cls(window=snapshot["window"])
        for index, count in snapshot["packets"]:
            sampler._packets[index] = count
        for index, count in snapshot["dropped"]:
            sampler._dropped[index] = count
        return sampler


def scatter_points(
    a: DropRateSampler, b: DropRateSampler, min_packets: int = 1
) -> List[Tuple[float, float]]:
    """Pair two samplers' windows into (rate_a, rate_b) scatter points —
    the Figure 8 plot of SPI vs bitmap drop rates.

    ``min_packets`` discards near-empty windows (e.g. the trace tail where
    one straggler packet yields a meaningless 50 % "rate").
    """
    a_samples = {s.window_start: s for s in a.samples()}
    b_samples = {s.window_start: s for s in b.samples()}
    points = []
    for start in sorted(set(a_samples) & set(b_samples)):
        sample_a, sample_b = a_samples[start], b_samples[start]
        if min(sample_a.packets, sample_b.packets) < min_packets:
            continue
        points.append((sample_a.drop_rate, sample_b.drop_rate))
    return points


def least_squares_slope(points: List[Tuple[float, float]]) -> float:
    """Slope of the best-fit line through the origin — the paper notes the
    Figure 8 reference line "has a slope of 1.0"."""
    numerator = sum(x * y for x, y in points)
    denominator = sum(x * x for x, _ in points)
    if denominator == 0:
        raise ValueError("degenerate scatter (all x are zero)")
    return numerator / denominator
