"""A minimal discrete-event scheduler.

Replay is packet-driven, but periodic work (throughput sampling, rotation
audits, custom probes) needs a clock.  :class:`EventScheduler` keeps a heap
of timed callbacks and is advanced by the replay loop as packet timestamps
progress — trace time, never wall-clock time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

Callback = Callable[[float], None]


class EventScheduler:
    """Heap-based one-shot and periodic event scheduling in trace time."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callback, Optional[float]]] = []
        self._counter = itertools.count()
        self.now = 0.0
        self.fired = 0

    def at(self, when: float, callback: Callback) -> None:
        """Run ``callback(when)`` once at trace time ``when``."""
        heapq.heappush(self._heap, (when, next(self._counter), callback, None))

    def every(self, interval: float, callback: Callback, start: Optional[float] = None) -> None:
        """Run ``callback`` every ``interval`` seconds, first at ``start``
        (defaults to one interval from now)."""
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        first = start if start is not None else self.now + interval
        heapq.heappush(self._heap, (first, next(self._counter), callback, interval))

    def advance_to(self, now: float) -> int:
        """Fire everything scheduled up to and including ``now``; returns
        the number of callbacks fired.  Time never moves backwards."""
        fired = 0
        while self._heap and self._heap[0][0] <= now:
            when, _, callback, interval = heapq.heappop(self._heap)
            self.now = max(self.now, when)
            callback(when)
            fired += 1
            if interval is not None:
                heapq.heappush(
                    self._heap, (when + interval, next(self._counter), callback, interval)
                )
        self.now = max(self.now, now)
        self.fired += fired
        return fired

    def next_time(self) -> Optional[float]:
        """Trace time of the earliest pending event, or None when idle.

        The batched backend uses this to split chunks at event
        boundaries, so probes fire at exactly the per-packet moments.
        """
        return self._heap[0][0] if self._heap else None

    def pending(self) -> int:
        """Events still scheduled."""
        return len(self._heap)
