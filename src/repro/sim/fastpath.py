"""Batched replay fast path.

The per-packet replay pipeline crosses four layers of Python dispatch
(``replay`` → ``EdgeRouter.forward`` → ``PacketFilter.process`` →
``BitmapFilter.filter``) and, worse, the int-backed :class:`BitVector`
pays O(N) big-int arithmetic per mark/test at the paper's N = 2^20.  This
module collapses the pipeline into one fused loop over columnar arrays:

1. **Columnarize** — the packet stream becomes parallel arrays of
   timestamps, direction flags, sizes, and *precomputed* hash-index tuples
   (:meth:`HashFamily.indices_many` through a bounded
   :class:`HashIndexMemo` LRU, so repeated flows hash once).
2. **Byte-stage the bitmap** — the ``k`` vectors are staged as
   ``bytearray``s for the duration of the batch; each mark/test is a few
   O(1) byte operations instead of megabit shifts.
3. **Chunk between rotations** — rotation boundaries are the only
   ordering constraint the bitmap imposes, so everything inside one Δt
   window runs with all hot state in locals.

The fused loop reproduces the legacy path *exactly*: same verdict for
every packet, same :class:`BitmapFilterStats` / :class:`FilterStats`
counters, same blocklist contents, same throughput-series bins, and the
same RNG consumption order — ``benchmarks/bench_throughput.py`` and
``tests/sim/test_fastpath.py`` hold it to that.

Within the unified engine (:mod:`repro.sim.pipeline`) this is the
bitmap-specific implementation of the filter-verdict stage:
:class:`~repro.sim.pipeline.BatchedBackend` reaches it through
:meth:`EdgeRouter.process_batch` whenever :func:`supports_fastpath`
says the filter qualifies; other filters take the generic
:meth:`PacketFilter.process_batch` protocol instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.core.bitmap_filter import FieldMode
from repro.core.dropper import StaticDropPolicy
from repro.core.hashing import HashIndexMemo
from repro.filters.base import Verdict
from repro.filters.bitmap import BitmapPacketFilter
from repro.net.packet import Direction, Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.router import EdgeRouter


def socket_key(
    pair, direction: Direction, hole_punching: bool
) -> Tuple[int, ...]:
    """The hash-input fields of a packet, as a plain tuple.

    Mirrors :meth:`BitmapFilter._key_fields` without constructing an
    intermediate inverse :class:`SocketPair`: inbound packets are inverted
    field-by-field, and in hole-punching mode the remote port is omitted.
    """
    if direction is Direction.INBOUND:
        if hole_punching:
            return (pair[0], pair[3], pair[4], pair[1])
        return (pair[0], pair[3], pair[4], pair[1], pair[2])
    if hole_punching:
        return (pair[0], pair[1], pair[2], pair[3])
    return tuple(pair)


@dataclass
class PacketColumns:
    """A packet stream decomposed into parallel (columnar) arrays.

    ``indices`` holds each packet's precomputed bitmap positions; repeated
    flows share one tuple object via the memo, so memory stays close to
    one machine word per packet for flow-repetitive traffic.  ``packets``
    keeps the originals for the parts of the pipeline that are inherently
    per-packet (blocklist suppression).
    """

    timestamps: List[float]
    outbound: List[bool]
    sizes: List[int]
    indices: List[Tuple[int, ...]]
    packets: List[Packet]

    def __len__(self) -> int:
        return len(self.packets)

    @classmethod
    def from_packets(
        cls, packets: Sequence[Packet], flt: BitmapPacketFilter
    ) -> "PacketColumns":
        """Columnarize ``packets`` for ``flt``'s hash family / field mode."""
        hole = flt.core.config.field_mode is FieldMode.HOLE_PUNCHING
        inbound = Direction.INBOUND
        timestamps: List[float] = []
        outbound: List[bool] = []
        sizes: List[int] = []
        keys: List[Tuple[int, ...]] = []
        for packet in packets:
            direction = packet.direction
            if direction is None:
                raise ValueError("packet has no direction set")
            timestamps.append(packet.timestamp)
            outbound.append(direction is not inbound)
            sizes.append(packet.size)
            keys.append(socket_key(packet.pair, direction, hole))
        return cls(
            timestamps=timestamps,
            outbound=outbound,
            sizes=sizes,
            indices=flt.hash_memo.get_many(keys),
            packets=list(packets),
        )


def supports_fastpath(packet_filter) -> bool:
    """True when the fused batched loop can replay this filter."""
    return isinstance(packet_filter, BitmapPacketFilter)


def process_packets_fast(
    router: "EdgeRouter", packets: Sequence[Packet]
) -> List[Verdict]:
    """The fused replay loop: blocklist + bitmap filter + accounting.

    Equivalent to ``[router.forward(p) for p in packets]`` for a router
    hosting a :class:`BitmapPacketFilter`, with every per-packet decision
    preserved in order — blocklist suppression interleaves with marking
    (a blocked connection's outbound packets must not mark), so the loop
    is fused rather than staged.
    """
    flt = router.filter
    if not supports_fastpath(flt):  # pragma: no cover - guarded by caller
        return [router.forward(packet) for packet in packets]
    columns = PacketColumns.from_packets(packets, flt)
    total = len(columns)
    router.packets += total
    verdicts: List[Verdict] = []
    if total == 0:
        return verdicts

    PASS, DROP = Verdict.PASS, Verdict.DROP
    timestamps = columns.timestamps
    outbound_flags = columns.outbound
    sizes = columns.sizes
    indices_seq = columns.indices
    originals = columns.packets

    core = flt.core
    config = core.config
    k = config.vectors
    nbytes = (config.size + 7) // 8
    bufs = [bytearray(vector.to_bytes()) for vector in core.vectors]
    rng_random = core._rng.random

    controller = flt.drop_controller
    record_upload = controller.meter.record
    # A static policy's P_d ignores the measured rate, so the per-packet
    # ``rate_bps`` call (a pure read: its lazy eviction never changes any
    # later reading) is skipped and the constant hoisted out of the loop.
    static_p: Optional[float] = (
        controller.policy.probability(0.0)
        if isinstance(controller.policy, StaticDropPolicy)
        else None
    )
    probability_at = controller.probability

    blocklist = router.blocklist
    suppress = blocklist.suppress if blocklist is not None else None

    offered_bins = router.offered._bins
    passed_bins = router.passed._bins
    series_interval = router.offered.interval
    offered_out = offered_bins[Direction.OUTBOUND]
    offered_in = offered_bins[Direction.INBOUND]
    passed_out = passed_bins[Direction.OUTBOUND]
    passed_in = passed_bins[Direction.INBOUND]
    drop_window = router.inbound_drops.window
    window_packets = router.inbound_drops._packets
    window_dropped = router.inbound_drops._dropped

    # Local FilterStats / BitmapFilterStats counters, flushed at the end.
    passed_out_n = passed_in_n = dropped_out_n = dropped_in_n = 0
    passed_out_b = passed_in_b = dropped_out_b = dropped_in_b = 0
    marked = hits = misses = bitmap_dropped = 0

    append = verdicts.append
    next_rotation = core._next_rotation
    current = bufs[core.idx]

    for position in range(total):
        now = timestamps[position]
        size = sizes[position]
        is_outbound = outbound_flags[position]

        bin_index = int(now / series_interval)
        if is_outbound:
            offered_out[bin_index] = offered_out.get(bin_index, 0) + size
        else:
            offered_in[bin_index] = offered_in.get(bin_index, 0) + size

        if suppress is not None and suppress(originals[position]):
            append(DROP)
            if not is_outbound:
                window_index = int(now / drop_window)
                window_packets[window_index] = window_packets.get(window_index, 0) + 1
                window_dropped[window_index] = window_dropped.get(window_index, 0) + 1
            continue

        # Rotation boundary — rare; refreshes the chunk-local staging.
        if next_rotation is None or now >= next_rotation:
            vacated = core.idx
            ran = core.advance_to(now)
            if ran >= k:
                bufs = [bytearray(nbytes) for _ in range(k)]
            elif ran:
                for step in range(ran):
                    bufs[(vacated + step) % k] = bytearray(nbytes)
            next_rotation = core._next_rotation
            current = bufs[core.idx]

        if is_outbound:
            for index in indices_seq[position]:
                byte = index >> 3
                bit = 1 << (index & 7)
                for buf in bufs:
                    buf[byte] |= bit
            marked += 1
            record_upload(now, size)
            passed_out_n += 1
            passed_out_b += size
            bin_index = int(now / series_interval)
            passed_out[bin_index] = passed_out.get(bin_index, 0) + size
            append(PASS)
            continue

        hit = True
        for index in indices_seq[position]:
            if not current[index >> 3] & (1 << (index & 7)):
                hit = False
                break
        if hit:
            hits += 1
            dropped = False
        else:
            misses += 1
            probability = static_p if static_p is not None else probability_at(now)
            if probability >= 1.0 or rng_random() < probability:
                bitmap_dropped += 1
                dropped = True
            else:
                dropped = False

        window_index = int(now / drop_window)
        window_packets[window_index] = window_packets.get(window_index, 0) + 1
        if dropped:
            window_dropped[window_index] = window_dropped.get(window_index, 0) + 1
            dropped_in_n += 1
            dropped_in_b += size
            if blocklist is not None:
                blocklist.block(originals[position].pair, now)
            append(DROP)
        else:
            passed_in_n += 1
            passed_in_b += size
            bin_index = int(now / series_interval)
            passed_in[bin_index] = passed_in.get(bin_index, 0) + size
            append(PASS)

    for vector, buf in zip(core.vectors, bufs):
        vector._bits = int.from_bytes(buf, "little")
    core_stats = core.stats
    core_stats.outbound_marked += marked
    core_stats.inbound_hits += hits
    core_stats.inbound_misses += misses
    core_stats.inbound_dropped += bitmap_dropped
    stats = flt.stats
    stats.passed[Direction.OUTBOUND] += passed_out_n
    stats.passed[Direction.INBOUND] += passed_in_n
    stats.dropped[Direction.OUTBOUND] += dropped_out_n
    stats.dropped[Direction.INBOUND] += dropped_in_n
    stats.passed_bytes[Direction.OUTBOUND] += passed_out_b
    stats.passed_bytes[Direction.INBOUND] += passed_in_b
    stats.dropped_bytes[Direction.OUTBOUND] += dropped_out_b
    stats.dropped_bytes[Direction.INBOUND] += dropped_in_b
    return verdicts


def fast_replay(packets, packet_filter, **kwargs):
    """Batched :func:`repro.sim.replay.replay` — same result, ≥3× faster.

    Convenience wrapper: ``replay(..., batched=True)``.
    """
    from repro.sim.replay import replay

    return replay(packets, packet_filter, batched=True, **kwargs)
