"""Batched replay fast path.

The per-packet replay pipeline crosses four layers of Python dispatch
(``replay`` → ``EdgeRouter.forward`` → ``PacketFilter.process`` →
``BitmapFilter.filter``) and, worse, the int-backed :class:`BitVector`
pays O(N) big-int arithmetic per mark/test at the paper's N = 2^20.  This
module collapses the pipeline into one fused loop over columnar arrays:

1. **Columnarize** — the packet stream becomes parallel arrays of
   timestamps, direction flags, sizes, and *precomputed* hash-index tuples
   (:meth:`HashFamily.indices_many` through a bounded
   :class:`HashIndexMemo` LRU, so repeated flows hash once).
2. **Byte-stage the bitmap** — the ``k`` vectors are staged as
   ``bytearray``s for the duration of the batch; each mark/test is a few
   O(1) byte operations instead of megabit shifts.
3. **Chunk between rotations** — rotation boundaries are the only
   ordering constraint the bitmap imposes, so everything inside one Δt
   window runs with all hot state in locals.

The fused loop reproduces the legacy path *exactly*: same verdict for
every packet, same :class:`BitmapFilterStats` / :class:`FilterStats`
counters, same blocklist contents, same throughput-series bins, and the
same RNG consumption order — ``benchmarks/bench_throughput.py`` and
``tests/sim/test_fastpath.py`` hold it to that.

Within the unified engine (:mod:`repro.sim.pipeline`) this is the
bitmap-specific implementation of the filter-verdict stage:
:class:`~repro.sim.pipeline.BatchedBackend` reaches it through
:meth:`EdgeRouter.process_batch` whenever :func:`supports_fastpath`
says the filter qualifies; other filters take the generic
:meth:`PacketFilter.process_batch` protocol instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.core.bitmap_filter import FieldMode
from repro.core.dropper import StaticDropPolicy
from repro.core.hashing import HashIndexMemo
from repro.filters.base import Verdict
from repro.filters.bitmap import BitmapPacketFilter
from repro.net.packet import Direction, Packet
from repro.net.table import _np, _np_enabled

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.router import EdgeRouter


def socket_key(
    pair, direction: Direction, hole_punching: bool
) -> Tuple[int, ...]:
    """The hash-input fields of a packet, as a plain tuple.

    Mirrors :meth:`BitmapFilter._key_fields` without constructing an
    intermediate inverse :class:`SocketPair`: inbound packets are inverted
    field-by-field, and in hole-punching mode the remote port is omitted.
    """
    if direction is Direction.INBOUND:
        if hole_punching:
            return (pair[0], pair[3], pair[4], pair[1])
        return (pair[0], pair[3], pair[4], pair[1], pair[2])
    if hole_punching:
        return (pair[0], pair[1], pair[2], pair[3])
    return tuple(pair)


@dataclass
class PacketColumns:
    """A packet stream decomposed into parallel (columnar) arrays.

    ``indices`` holds each packet's precomputed bitmap positions; repeated
    flows share one tuple object via the memo, so memory stays close to
    one machine word per packet for flow-repetitive traffic.  ``packets``
    keeps the originals for the parts of the pipeline that are inherently
    per-packet (blocklist suppression).
    """

    timestamps: List[float]
    outbound: List[bool]
    sizes: List[int]
    indices: List[Tuple[int, ...]]
    packets: List[Packet]

    def __len__(self) -> int:
        return len(self.packets)

    @classmethod
    def from_packets(
        cls, packets: Sequence[Packet], flt: BitmapPacketFilter
    ) -> "PacketColumns":
        """Columnarize ``packets`` for ``flt``'s hash family / field mode."""
        hole = flt.core.config.field_mode is FieldMode.HOLE_PUNCHING
        inbound = Direction.INBOUND
        timestamps: List[float] = []
        outbound: List[bool] = []
        sizes: List[int] = []
        keys: List[Tuple[int, ...]] = []
        for packet in packets:
            direction = packet.direction
            if direction is None:
                raise ValueError("packet has no direction set")
            timestamps.append(packet.timestamp)
            outbound.append(direction is not inbound)
            sizes.append(packet.size)
            keys.append(socket_key(packet.pair, direction, hole))
        return cls(
            timestamps=timestamps,
            outbound=outbound,
            sizes=sizes,
            indices=flt.hash_memo.get_many(keys),
            packets=list(packets),
        )


def supports_fastpath(packet_filter) -> bool:
    """True when a fused batched kernel can replay this filter.

    Delegates to the kernel registry (:mod:`repro.sim.kernels`) and keys
    on the filter's **exact type**: a subclass of a registered filter may
    override per-packet hooks that a fused kernel would silently ignore,
    so unregistered subclasses report False and take the generic
    ``process_batch`` path instead.
    """
    from repro.sim.kernels import kernel_for  # local import: cycle guard

    return kernel_for(packet_filter) is not None


def process_packets_fast(
    router: "EdgeRouter", packets: Sequence[Packet]
) -> List[Verdict]:
    """The fused replay loop: blocklist + bitmap filter + accounting.

    Equivalent to ``[router.forward(p) for p in packets]`` for a router
    hosting a :class:`BitmapPacketFilter`, with every per-packet decision
    preserved in order — blocklist suppression interleaves with marking
    (a blocked connection's outbound packets must not mark), so the loop
    is fused rather than staged.
    """
    flt = router.filter
    if type(flt) is not BitmapPacketFilter:  # pragma: no cover - guarded by caller
        return [router.forward(packet) for packet in packets]
    columns = PacketColumns.from_packets(packets, flt)
    total = len(columns)
    router.packets += total
    verdicts: List[Verdict] = []
    if total == 0:
        return verdicts

    PASS, DROP = Verdict.PASS, Verdict.DROP
    timestamps = columns.timestamps
    outbound_flags = columns.outbound
    sizes = columns.sizes
    indices_seq = columns.indices
    originals = columns.packets

    core = flt.core
    config = core.config
    k = config.vectors
    nbytes = (config.size + 7) // 8
    bufs = [bytearray(vector.to_bytes()) for vector in core.vectors]
    rng_random = core._rng.random

    controller = flt.drop_controller
    record_upload = controller.meter.record
    # A static policy's P_d ignores the measured rate, so the per-packet
    # ``rate_bps`` call (a pure read: its lazy eviction never changes any
    # later reading) is skipped and the constant hoisted out of the loop.
    static_p: Optional[float] = (
        controller.policy.probability(0.0)
        if isinstance(controller.policy, StaticDropPolicy)
        else None
    )
    probability_at = controller.probability

    blocklist = router.blocklist
    suppress = blocklist.suppress if blocklist is not None else None

    offered_bins = router.offered._bins
    passed_bins = router.passed._bins
    series_interval = router.offered.interval
    offered_out = offered_bins[Direction.OUTBOUND]
    offered_in = offered_bins[Direction.INBOUND]
    passed_out = passed_bins[Direction.OUTBOUND]
    passed_in = passed_bins[Direction.INBOUND]
    drop_window = router.inbound_drops.window
    window_packets = router.inbound_drops._packets
    window_dropped = router.inbound_drops._dropped

    # Local FilterStats / BitmapFilterStats counters, flushed at the end.
    passed_out_n = passed_in_n = dropped_out_n = dropped_in_n = 0
    passed_out_b = passed_in_b = dropped_out_b = dropped_in_b = 0
    marked = hits = misses = bitmap_dropped = 0

    append = verdicts.append
    next_rotation = core._next_rotation
    current = bufs[core.idx]

    for position in range(total):
        now = timestamps[position]
        size = sizes[position]
        is_outbound = outbound_flags[position]

        bin_index = int(now / series_interval)
        if is_outbound:
            offered_out[bin_index] = offered_out.get(bin_index, 0) + size
        else:
            offered_in[bin_index] = offered_in.get(bin_index, 0) + size

        if suppress is not None and suppress(originals[position]):
            append(DROP)
            if not is_outbound:
                window_index = int(now / drop_window)
                window_packets[window_index] = window_packets.get(window_index, 0) + 1
                window_dropped[window_index] = window_dropped.get(window_index, 0) + 1
            continue

        # Rotation boundary — rare; refreshes the chunk-local staging.
        if next_rotation is None or now >= next_rotation:
            vacated = core.idx
            ran = core.advance_to(now)
            if ran >= k:
                bufs = [bytearray(nbytes) for _ in range(k)]
            elif ran:
                for step in range(ran):
                    bufs[(vacated + step) % k] = bytearray(nbytes)
            next_rotation = core._next_rotation
            current = bufs[core.idx]

        if is_outbound:
            for index in indices_seq[position]:
                byte = index >> 3
                bit = 1 << (index & 7)
                for buf in bufs:
                    buf[byte] |= bit
            marked += 1
            record_upload(now, size)
            passed_out_n += 1
            passed_out_b += size
            bin_index = int(now / series_interval)
            passed_out[bin_index] = passed_out.get(bin_index, 0) + size
            append(PASS)
            continue

        hit = True
        for index in indices_seq[position]:
            if not current[index >> 3] & (1 << (index & 7)):
                hit = False
                break
        if hit:
            hits += 1
            dropped = False
        else:
            misses += 1
            probability = static_p if static_p is not None else probability_at(now)
            if probability >= 1.0 or rng_random() < probability:
                bitmap_dropped += 1
                dropped = True
            else:
                dropped = False

        window_index = int(now / drop_window)
        window_packets[window_index] = window_packets.get(window_index, 0) + 1
        if dropped:
            window_dropped[window_index] = window_dropped.get(window_index, 0) + 1
            dropped_in_n += 1
            dropped_in_b += size
            if blocklist is not None:
                blocklist.block(originals[position].pair, now)
            append(DROP)
        else:
            passed_in_n += 1
            passed_in_b += size
            bin_index = int(now / series_interval)
            passed_in[bin_index] = passed_in.get(bin_index, 0) + size
            append(PASS)

    for vector, buf in zip(core.vectors, bufs):
        vector._bits = int.from_bytes(buf, "little")
    core_stats = core.stats
    core_stats.outbound_marked += marked
    core_stats.inbound_hits += hits
    core_stats.inbound_misses += misses
    core_stats.inbound_dropped += bitmap_dropped
    stats = flt.stats
    stats.passed[Direction.OUTBOUND] += passed_out_n
    stats.passed[Direction.INBOUND] += passed_in_n
    stats.dropped[Direction.OUTBOUND] += dropped_out_n
    stats.dropped[Direction.INBOUND] += dropped_in_n
    stats.passed_bytes[Direction.OUTBOUND] += passed_out_b
    stats.passed_bytes[Direction.INBOUND] += passed_in_b
    stats.dropped_bytes[Direction.OUTBOUND] += dropped_out_b
    stats.dropped_bytes[Direction.INBOUND] += dropped_in_b
    return verdicts


def process_table_fast(router: "EdgeRouter", table) -> List[Verdict]:
    """The fused replay loop over a :class:`~repro.net.table.PacketTable`.

    Produces exactly the verdicts, filter/bitmap stats, blocklist
    contents and RNG consumption of ``process_packets_fast(router,
    table.to_packets())`` — without materialising a single
    :class:`Packet`.  Interned ``pair_ids`` unlock flow-level caching the
    object loop cannot afford:

    * each flow is hashed at most **once per direction per table**
      (:meth:`PacketTable.seen_directions` + :meth:`HashIndexMemo.get_many`)
      instead of once per packet — so the memo's hit counter measures
      cross-chunk flow reuse here, not per-packet repeats;
    * an outbound flow **marks once per rotation window** — marking is
      idempotent while no vector rotates, so repeats skip the k×m bit
      loop (stats still count every packet);
    * an inbound flow that tested *hit* stays a hit until the next
      rotation — bits are only ever set within a window — so repeats
      skip the probe loop; misses always re-test (an intervening mark
      may flip them) and hits never consume RNG, keeping the stream's
      draw order intact;
    * the blocklist's canonical pair is computed once per flow, and its
      GC clock is inlined to a float compare per packet.
    """
    flt = router.filter
    if type(flt) is not BitmapPacketFilter:  # pragma: no cover - guarded by caller
        return [router.forward(view) for view in table.iter_views()]
    total = len(table)
    router.packets += total
    verdicts: List[Verdict] = []
    if total == 0:
        return verdicts

    # Per-flow hash indices: one key per (flow, direction) actually present.
    hole = flt.core.config.field_mode is FieldMode.HOLE_PUNCHING
    pairs = table.pairs
    seen = table.seen_directions()
    keys: List[Tuple[int, ...]] = []
    slots: List[int] = []  # pid << 1 | is_outbound
    for pid, bits in enumerate(seen):
        if not bits:
            continue
        pair = pairs[pid]
        if bits & 1:  # SEEN_OUTBOUND
            keys.append(socket_key(pair, Direction.OUTBOUND, hole))
            slots.append((pid << 1) | 1)
        if bits & 2:  # SEEN_INBOUND
            keys.append(socket_key(pair, Direction.INBOUND, hole))
            slots.append(pid << 1)
    idx_out: List[Tuple[int, ...]] = [()] * len(pairs)
    idx_in: List[Tuple[int, ...]] = [()] * len(pairs)
    for slot, indices in zip(slots, flt.hash_memo.get_many(keys)):
        if slot & 1:
            idx_out[slot >> 1] = indices
        else:
            idx_in[slot >> 1] = indices

    PASS, DROP = Verdict.PASS, Verdict.DROP

    core = flt.core
    config = core.config
    k = config.vectors
    nbytes = (config.size + 7) // 8
    bufs = [bytearray(vector.to_bytes()) for vector in core.vectors]
    rng_random = core._rng.random

    controller = flt.drop_controller
    record_upload = controller.meter.record
    static_p: Optional[float] = (
        controller.policy.probability(0.0)
        if isinstance(controller.policy, StaticDropPolicy)
        else None
    )
    probability_at = controller.probability

    blocklist = router.blocklist
    if blocklist is not None:
        blocked = blocklist._blocked
        retention = blocklist.retention
        gc_interval = blocklist._gc_interval
        next_gc = blocklist._next_gc
        canon_cache: List[Optional[object]] = [None] * len(pairs)
        supp_n = supp_b = 0
    else:
        blocked = None

    offered_bins = router.offered._bins
    passed_bins = router.passed._bins
    series_interval = router.offered.interval
    offered_out = offered_bins[Direction.OUTBOUND]
    offered_in = offered_bins[Direction.INBOUND]
    passed_out = passed_bins[Direction.OUTBOUND]
    passed_in = passed_bins[Direction.INBOUND]
    drop_window = router.inbound_drops.window
    window_packets = router.inbound_drops._packets
    window_dropped = router.inbound_drops._dropped

    passed_out_n = passed_in_n = dropped_out_n = dropped_in_n = 0
    passed_out_b = passed_in_b = dropped_out_b = dropped_in_b = 0
    marked = hits = misses = bitmap_dropped = 0

    append = verdicts.append
    next_rotation = core._next_rotation
    current = bufs[core.idx]

    # Rotation generation: flow caches are valid exactly while no vector
    # has rotated (bits only accumulate within a window).
    generation = 0
    marked_gen: dict = {}
    hit_gen: dict = {}
    marked_get = marked_gen.get
    hit_get = hit_gen.get

    # Series/window bin indices precomputed column-wise.  ``int(x)`` and
    # a float64→int64 cast both truncate toward zero, so the numpy path
    # is value-identical to the per-packet ``int(now / interval)``.
    timestamps = table.timestamps
    if _np_enabled() and total > 64:
        ts_np = _np.frombuffer(timestamps, dtype=_np.float64)
        series_bins = (ts_np / series_interval).astype(_np.int64).tolist()
        window_bins = (ts_np / drop_window).astype(_np.int64).tolist()
    else:
        series_bins = [int(now / series_interval) for now in timestamps]
        window_bins = [int(now / drop_window) for now in timestamps]

    for now, size, is_out, pid, series_bin, window_index in zip(
        timestamps, table.sizes, table.outbound, table.pair_ids,
        series_bins, window_bins,
    ):
        if is_out:
            offered_out[series_bin] = offered_out.get(series_bin, 0) + size
        else:
            offered_in[series_bin] = offered_in.get(series_bin, 0) + size

        if blocked is not None:
            # Inlined BlockedConnectionStore._maybe_gc / suppress_fields.
            if retention is not None:
                if next_gc is None:
                    next_gc = now + gc_interval
                elif now >= next_gc:
                    next_gc = now + gc_interval
                    horizon = now - retention
                    for stale in [
                        entry for entry, stamped in blocked.items()
                        if stamped < horizon
                    ]:
                        del blocked[stale]
            canon = canon_cache[pid]
            if canon is None:
                canon = canon_cache[pid] = pairs[pid].canonical
            stamped = blocked.get(canon)
            if stamped is not None:
                if retention is not None and now - stamped > retention:
                    del blocked[canon]
                else:
                    blocked[canon] = now
                    supp_n += 1
                    supp_b += size
                    append(DROP)
                    if not is_out:
                        window_packets[window_index] = (
                            window_packets.get(window_index, 0) + 1
                        )
                        window_dropped[window_index] = (
                            window_dropped.get(window_index, 0) + 1
                        )
                    continue

        if next_rotation is None or now >= next_rotation:
            vacated = core.idx
            ran = core.advance_to(now)
            if ran >= k:
                bufs = [bytearray(nbytes) for _ in range(k)]
            elif ran:
                for step in range(ran):
                    bufs[(vacated + step) % k] = bytearray(nbytes)
            next_rotation = core._next_rotation
            current = bufs[core.idx]
            if ran:
                generation += 1

        if is_out:
            if marked_get(pid) != generation:
                marked_gen[pid] = generation
                for index in idx_out[pid]:
                    byte = index >> 3
                    bit = 1 << (index & 7)
                    for buf in bufs:
                        buf[byte] |= bit
            marked += 1
            record_upload(now, size)
            passed_out_n += 1
            passed_out_b += size
            passed_out[series_bin] = passed_out.get(series_bin, 0) + size
            append(PASS)
            continue

        if hit_get(pid) == generation:
            hit = True
        else:
            hit = True
            for index in idx_in[pid]:
                if not current[index >> 3] & (1 << (index & 7)):
                    hit = False
                    break
            if hit:
                hit_gen[pid] = generation
        if hit:
            hits += 1
            dropped = False
        else:
            misses += 1
            probability = static_p if static_p is not None else probability_at(now)
            if probability >= 1.0 or rng_random() < probability:
                bitmap_dropped += 1
                dropped = True
            else:
                dropped = False

        window_packets[window_index] = window_packets.get(window_index, 0) + 1
        if dropped:
            window_dropped[window_index] = window_dropped.get(window_index, 0) + 1
            dropped_in_n += 1
            dropped_in_b += size
            if blocked is not None:
                canon = canon_cache[pid]
                if canon is None:
                    canon = canon_cache[pid] = pairs[pid].canonical
                blocked[canon] = now
            append(DROP)
        else:
            passed_in_n += 1
            passed_in_b += size
            passed_in[series_bin] = passed_in.get(series_bin, 0) + size
            append(PASS)

    for vector, buf in zip(core.vectors, bufs):
        vector._bits = int.from_bytes(buf, "little")
    core_stats = core.stats
    core_stats.outbound_marked += marked
    core_stats.inbound_hits += hits
    core_stats.inbound_misses += misses
    core_stats.inbound_dropped += bitmap_dropped
    stats = flt.stats
    stats.passed[Direction.OUTBOUND] += passed_out_n
    stats.passed[Direction.INBOUND] += passed_in_n
    stats.dropped[Direction.OUTBOUND] += dropped_out_n
    stats.dropped[Direction.INBOUND] += dropped_in_n
    stats.passed_bytes[Direction.OUTBOUND] += passed_out_b
    stats.passed_bytes[Direction.INBOUND] += passed_in_b
    stats.dropped_bytes[Direction.OUTBOUND] += dropped_out_b
    stats.dropped_bytes[Direction.INBOUND] += dropped_in_b
    if blocklist is not None:
        blocklist._next_gc = next_gc
        blocklist.suppressed_packets += supp_n
        blocklist.suppressed_bytes += supp_b
    return verdicts


def fast_replay(packets, packet_filter, **kwargs):
    """Batched :func:`repro.sim.replay.replay` — same result, ≥3× faster.

    Convenience wrapper: ``replay(..., batched=True)``.
    """
    from repro.sim.replay import replay

    return replay(packets, packet_filter, batched=True, **kwargs)
