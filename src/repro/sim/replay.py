"""Trace replay — the section 5.3 simulations as reusable harness code.

:func:`replay` is a thin front door over the unified engine in
:mod:`repro.sim.pipeline`: it maps the ``(batched, workers, scheduler)``
knobs onto one :class:`~repro.sim.pipeline.ExecutionBackend` and runs the
shared stage pipeline.  Every combination either selects a backend or
raises — there are no silent mode downgrades.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.filters.base import PacketFilter
from repro.net.packet import Packet
from repro.net.table import PacketTable, as_table
from repro.sim.engine import EventScheduler
from repro.sim.metrics import scatter_points
from repro.sim.pipeline import (
    ExecutionBackend,
    PipelineConfig,
    ReplayResult,
    select_backend,
)

__all__ = ["ReplayResult", "replay", "DropRateComparison", "compare_drop_rates"]


def replay(
    packets: Iterable[Packet],
    packet_filter: PacketFilter,
    use_blocklist: bool = True,
    throughput_interval: float = 1.0,
    drop_window: float = 10.0,
    scheduler: Optional[EventScheduler] = None,
    batched: Optional[bool] = None,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[ExecutionBackend] = None,
    record_fingerprint: bool = False,
    transport: str = "auto",
) -> ReplayResult:
    """Replay a timestamp-ordered packet stream through a filter.

    ``packets`` may be a ``List[Packet]``, any packet iterable, a
    columnar :class:`~repro.net.table.PacketTable`, or an iterable of
    tables (:meth:`~repro.workload.generator.TraceGenerator.iter_tables`
    streams chunks in bounded memory) — every backend accepts either
    representation and produces identical results on equal streams.

    ``use_blocklist`` enables the blocked-σ persistence of section 5.3
    (dropped inbound connections stay dropped).  An optional scheduler
    lets callers attach periodic probes; it is advanced in trace time.

    ``batched`` selects the columnar chunked engine
    (:class:`~repro.sim.pipeline.BatchedBackend`): the fused fast path
    for bitmap filters, the generic
    :meth:`~repro.filters.base.PacketFilter.process_batch` protocol for
    everything else, with identical results either way.  ``None`` (the
    default) lets the backend decide: sequential in-process, batched
    lanes under the parallel engine.  With a scheduler attached the
    batched engine splits chunks at event boundaries, so probes fire at
    exactly the per-packet moments; ``batched=False`` forces the
    per-packet loop everywhere, including parallel lanes.

    ``workers > 1`` dispatches to the multiprocess sharded engine
    (:class:`~repro.sim.pipeline.ParallelBackend` /
    :func:`repro.sim.parallel.parallel_replay`): the stream is
    partitioned by shard ownership, one worker process replays each lane,
    and the merged result carries the same aggregate counts, series bins
    and per-shard statistics as a single-process run.  Requires a
    :class:`~repro.filters.sharded.ShardedFilter` and no scheduler
    (incoherent combinations raise —
    see :func:`~repro.sim.pipeline.select_backend` for the full matrix).

    An explicit ``backend`` bypasses the knob dispatch entirely (and is
    mutually exclusive with ``batched``/``workers``/``chunk_size``).

    ``transport`` (``auto``/``shm``/``pickle``) picks the parallel
    backend's lane dispatch mechanism — shared-memory column buffers or
    pickled lane tables (see :func:`repro.sim.parallel.parallel_replay`);
    it is only meaningful with ``workers > 1``.

    ``record_fingerprint`` maintains a running 64-bit FNV-1a fingerprint
    of the verdict sequence (``result.fingerprint``) — the cheap
    equality witness the service plane's warm-restart tests compare
    against an offline replay.  The parallel backend merges lanes
    without a global verdict order, so it cannot record one (raises).
    """
    if backend is None:
        backend = select_backend(
            batched=batched, workers=workers, scheduler=scheduler,
            chunk_size=chunk_size, transport=transport,
        )
    elif (batched is not None or workers != 1 or chunk_size is not None
          or transport != "auto"):
        raise ValueError(
            "pass either backend= or the batched/workers/chunk_size/"
            "transport knobs, not both"
        )
    if record_fingerprint and backend.name == "parallel":
        raise ValueError(
            "record_fingerprint needs a global verdict order; the parallel "
            "backend merges per-shard lanes and has none"
        )
    config = PipelineConfig(
        packet_filter=packet_filter,
        use_blocklist=use_blocklist,
        throughput_interval=throughput_interval,
        drop_window=drop_window,
        scheduler=scheduler,
        record_fingerprint=record_fingerprint,
    )
    return backend.run(packets, config)


@dataclass
class DropRateComparison:
    """Figure 8's data: two (or more) filters over the same trace.

    ``timings`` records the comparison's phase split: ``trace_s`` (the
    one-time stream materialization, 0.0 when the caller handed over a
    ready list/table or a factory) and per-filter replay seconds under
    ``replay_s`` — the generate/replay accounting the benchmark JSONs
    publish.
    """

    results: Dict[str, ReplayResult]
    points: List[Tuple[float, float]]
    timings: Dict[str, object] = dataclass_field(default_factory=dict)

    def overall(self, name: str) -> float:
        """One filter's overall inbound drop rate."""
        return self.results[name].inbound_drop_rate


def compare_drop_rates(
    packets,
    filters: Dict[str, PacketFilter],
    use_blocklist: bool = False,
    drop_window: float = 10.0,
    min_window_packets: int = 20,
    batched: Optional[bool] = None,
    workers: int = 1,
) -> DropRateComparison:
    """Replay the same trace through each filter independently.

    Figure 8 compares *per-window inbound drop rates* of the SPI filter
    (x-axis) against the bitmap filter (y-axis); the blocklist is off by
    default there so the filters' raw decisions are compared packet by
    packet.  ``points`` pairs the first two filters in insertion order.

    ``packets`` may also be a **callable trace factory**: it is invoked
    once per filter and its return value (typically a fresh
    ``iter_tables`` chunk stream) goes straight to :func:`replay`
    *without* being materialized — the bounded-memory path for
    10–100M-packet Figure-8 campaigns, where one merged table would not
    fit.  Deterministic generators make every invocation replay the
    identical stream, so results match the materialized path exactly.

    ``batched`` / ``workers`` pass straight through to :func:`replay`,
    so Figure-8 comparisons on large traces can use the columnar and
    multiprocess fast paths — the per-window rates are identical by the
    backends' equivalence contract.
    """
    if len(filters) < 2:
        raise ValueError("need at least two filters to compare")
    factory = packets if callable(packets) else None
    trace_s = 0.0
    if factory is None and not isinstance(packets, (list, PacketTable)):
        # The same stream replays once per filter — materialize one
        # reusable representation (a generator of table chunks merges
        # into a single table; packet iterables do the same via the
        # exact Packet → row converter).
        started = time.perf_counter()
        packets = as_table(packets)
        trace_s = time.perf_counter() - started
    results: Dict[str, ReplayResult] = {}
    replay_s: Dict[str, float] = {}
    for name, flt in filters.items():
        stream = factory() if factory is not None else packets
        started = time.perf_counter()
        results[name] = replay(stream, flt, use_blocklist=use_blocklist,
                               drop_window=drop_window, batched=batched,
                               workers=workers)
        replay_s[name] = time.perf_counter() - started
    names = list(filters)
    points = scatter_points(
        results[names[0]].router.inbound_drops,
        results[names[1]].router.inbound_drops,
        min_packets=min_window_packets,
    )
    return DropRateComparison(
        results=results,
        points=points,
        timings={"trace_s": trace_s, "replay_s": replay_s},
    )
