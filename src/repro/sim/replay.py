"""Trace replay — the section 5.3 simulations as reusable harness code."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.filters.base import PacketFilter, Verdict
from repro.filters.blocklist import BlockedConnectionStore
from repro.net.packet import Direction, Packet
from repro.sim.engine import EventScheduler
from repro.sim.metrics import ThroughputSeries, scatter_points
from repro.sim.router import EdgeRouter


@dataclass
class ReplayResult:
    """Everything a replay produces."""

    router: EdgeRouter
    packets: int
    inbound_packets: int
    inbound_dropped: int
    duration: float

    @property
    def inbound_drop_rate(self) -> float:
        """Fraction of inbound packets dropped (Figure 8's metric)."""
        if self.inbound_packets == 0:
            return 0.0
        return self.inbound_dropped / self.inbound_packets

    @property
    def passed(self) -> ThroughputSeries:
        """Throughput of traffic the filter admitted."""
        return self.router.passed

    @property
    def offered(self) -> ThroughputSeries:
        """Throughput of everything presented to the router."""
        return self.router.offered


def replay(
    packets: Iterable[Packet],
    packet_filter: PacketFilter,
    use_blocklist: bool = True,
    throughput_interval: float = 1.0,
    drop_window: float = 10.0,
    scheduler: Optional[EventScheduler] = None,
    batched: bool = False,
    workers: int = 1,
) -> ReplayResult:
    """Replay a timestamp-ordered packet stream through a filter.

    ``use_blocklist`` enables the blocked-σ persistence of section 5.3
    (dropped inbound connections stay dropped).  An optional scheduler
    lets callers attach periodic probes; it is advanced in trace time.

    ``batched=True`` routes the whole stream through
    :meth:`EdgeRouter.process_batch` — the columnar fast path for bitmap
    filters (see :mod:`repro.sim.fastpath`), with identical results.  A
    scheduler forces the per-packet path, since its probes must interleave
    with individual packets.

    ``workers > 1`` dispatches to the multiprocess sharded engine
    (:func:`repro.sim.parallel.parallel_replay`): the stream is
    partitioned by shard ownership, one worker process replays each lane
    with the batched fast path, and the merged result carries the same
    aggregate counts, series bins and per-shard statistics as a
    single-process run.  Requires a
    :class:`~repro.filters.sharded.ShardedFilter` and no scheduler.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    if workers > 1:
        if scheduler is not None:
            raise ValueError(
                "parallel replay cannot drive a scheduler — its probes "
                "would have to interleave across worker processes"
            )
        from repro.sim.parallel import parallel_replay

        return parallel_replay(
            packets,
            packet_filter,
            workers=workers,
            use_blocklist=use_blocklist,
            throughput_interval=throughput_interval,
            drop_window=drop_window,
        )
    router = EdgeRouter(
        packet_filter,
        blocklist=BlockedConnectionStore() if use_blocklist else None,
        throughput_interval=throughput_interval,
        drop_window=drop_window,
    )
    if batched and scheduler is None:
        packet_list = packets if isinstance(packets, list) else list(packets)
        verdicts = router.process_batch(packet_list)
        inbound = 0
        dropped = 0
        for packet, verdict in zip(packet_list, verdicts):
            if packet.direction is Direction.INBOUND:
                inbound += 1
                if verdict is Verdict.DROP:
                    dropped += 1
        if router.blocklist is not None and packet_list:
            router.blocklist.compact(packet_list[-1].timestamp)
        return ReplayResult(
            router=router,
            packets=len(packet_list),
            inbound_packets=inbound,
            inbound_dropped=dropped,
            duration=(
                packet_list[-1].timestamp - packet_list[0].timestamp
                if packet_list
                else 0.0
            ),
        )
    total = 0
    inbound = 0
    dropped = 0
    first_ts: Optional[float] = None
    last_ts = 0.0
    for packet in packets:
        if first_ts is None:
            first_ts = packet.timestamp
        last_ts = packet.timestamp
        if scheduler is not None:
            scheduler.advance_to(packet.timestamp)
        verdict = router.forward(packet)
        total += 1
        if packet.direction is Direction.INBOUND:
            inbound += 1
            if verdict is Verdict.DROP:
                dropped += 1
    if router.blocklist is not None and first_ts is not None:
        # End-of-replay compaction: the surviving table is exactly the
        # entries still within retention, independent of interior GC phase
        # (and hence identical between this path and the partitioned one).
        router.blocklist.compact(last_ts)
    return ReplayResult(
        router=router,
        packets=total,
        inbound_packets=inbound,
        inbound_dropped=dropped,
        duration=(last_ts - first_ts) if first_ts is not None else 0.0,
    )


@dataclass
class DropRateComparison:
    """Figure 8's data: two filters over the same trace."""

    results: Dict[str, ReplayResult]
    points: List[Tuple[float, float]]

    def overall(self, name: str) -> float:
        """One filter's overall inbound drop rate."""
        return self.results[name].inbound_drop_rate


def compare_drop_rates(
    packets: List[Packet],
    filters: Dict[str, PacketFilter],
    use_blocklist: bool = False,
    drop_window: float = 10.0,
    min_window_packets: int = 20,
) -> DropRateComparison:
    """Replay the same trace through each filter independently.

    Figure 8 compares *per-window inbound drop rates* of the SPI filter
    (x-axis) against the bitmap filter (y-axis); the blocklist is off by
    default there so the filters' raw decisions are compared packet by
    packet.  ``points`` pairs the first two filters in insertion order.
    """
    if len(filters) < 2:
        raise ValueError("need at least two filters to compare")
    results = {
        name: replay(packets, flt, use_blocklist=use_blocklist, drop_window=drop_window)
        for name, flt in filters.items()
    }
    names = list(filters)
    points = scatter_points(
        results[names[0]].router.inbound_drops,
        results[names[1]].router.inbound_drops,
        min_packets=min_window_packets,
    )
    return DropRateComparison(results=results, points=points)
