"""The section-3 traffic analyzer.

Identifies the application behind each connection (payload patterns first,
well-known ports second, plus the two file-sharing strategies: P2P
service-endpoint propagation and FTP data-connection tracking), and
measures the per-connection properties the paper reports: direction,
packets/bytes per direction, lifetime, and out-in packet delay.

The analyzer exists to establish *ground truth* — the bitmap filter itself
never inspects payloads.
"""

from repro.analyzer.patterns import (
    PATTERNS,
    WELL_KNOWN_TCP_PORTS,
    WELL_KNOWN_UDP_PORTS,
    match_payload,
    port_application,
)
from repro.analyzer.classifier import ConnectionClassifier, TrafficAnalyzer
from repro.analyzer.outin import OutInDelayMeter
from repro.analyzer.report import (
    lifetime_report,
    port_cdf,
    protocol_distribution,
    utilization_summary,
)

__all__ = [
    "PATTERNS",
    "WELL_KNOWN_TCP_PORTS",
    "WELL_KNOWN_UDP_PORTS",
    "match_payload",
    "port_application",
    "ConnectionClassifier",
    "TrafficAnalyzer",
    "OutInDelayMeter",
    "protocol_distribution",
    "port_cdf",
    "lifetime_report",
    "utilization_summary",
]
