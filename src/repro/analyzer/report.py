"""Reports over analyzed traffic: Table 2 and Figures 2-5 as data.

Each function consumes the finished :class:`FlowRecord` list of a
:class:`repro.analyzer.classifier.TrafficAnalyzer` and returns plain data
structures that the benchmark harness renders next to the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net.flows import FlowRecord
from repro.net.inet import IPPROTO_TCP, IPPROTO_UDP
from repro.workload.apps import APP_UNKNOWN, P2P_APPS
from repro.workload.calibrate import table2_group

#: The paper's Figure 2/3 port classes.
CLASS_ALL = "ALL"
CLASS_P2P = "P2P"
CLASS_NON_P2P = "Non-P2P"
CLASS_UNKNOWN = "UNKNOWN"


@dataclass
class ProtocolRow:
    """One row of Table 2."""

    protocol: str
    connections: int
    connection_share: float
    bytes: int
    byte_share: float


def protocol_distribution(flows: Sequence[FlowRecord]) -> List[ProtocolRow]:
    """Table 2: connections and utilization share per protocol group."""
    if not flows:
        return []
    connection_counts: Dict[str, int] = {}
    byte_counts: Dict[str, int] = {}
    total_bytes = 0
    for flow in flows:
        group = table2_group(flow.application or APP_UNKNOWN)
        connection_counts[group] = connection_counts.get(group, 0) + 1
        byte_counts[group] = byte_counts.get(group, 0) + flow.bytes
        total_bytes += flow.bytes
    rows = []
    for group in sorted(connection_counts, key=lambda g: -byte_counts.get(g, 0)):
        rows.append(
            ProtocolRow(
                protocol=group,
                connections=connection_counts[group],
                connection_share=connection_counts[group] / len(flows),
                bytes=byte_counts.get(group, 0),
                byte_share=byte_counts.get(group, 0) / total_bytes if total_bytes else 0.0,
            )
        )
    return rows


def _port_class(flow: FlowRecord) -> str:
    application = flow.application or APP_UNKNOWN
    if application in P2P_APPS:
        return CLASS_P2P
    if application == APP_UNKNOWN:
        return CLASS_UNKNOWN
    return CLASS_NON_P2P


def port_cdf(
    flows: Sequence[FlowRecord],
    protocol: int = IPPROTO_TCP,
) -> Dict[str, List[Tuple[int, float]]]:
    """Figures 2-3: cumulative distribution of port numbers per class.

    TCP: only the service-side port of each connection is counted (the
    destination port of the SYN — here, the destination of the initiating
    packet).  UDP: both source and destination ports are counted.  Returns
    ``{class: [(port, cumulative_fraction), ...]}`` including ``ALL``.
    """
    samples: Dict[str, List[int]] = {
        CLASS_ALL: [],
        CLASS_P2P: [],
        CLASS_NON_P2P: [],
        CLASS_UNKNOWN: [],
    }
    for flow in flows:
        if flow.pair.protocol != protocol:
            continue
        if protocol == IPPROTO_TCP:
            if not flow.saw_syn:
                continue
            ports = [flow.pair.dst_port]
        else:
            ports = [flow.pair.src_port, flow.pair.dst_port]
        klass = _port_class(flow)
        samples[CLASS_ALL].extend(ports)
        samples[klass].extend(ports)
    return {klass: _cdf(values) for klass, values in samples.items() if values}


def _cdf(values: List[int]) -> List[Tuple[int, float]]:
    ordered = sorted(values)
    total = len(ordered)
    points: List[Tuple[int, float]] = []
    seen = 0
    previous: Optional[int] = None
    for value in ordered:
        seen += 1
        if value != previous:
            points.append((value, seen / total))
            previous = value
        else:
            points[-1] = (value, seen / total)
    return points


def cdf_value(points: List[Tuple[int, float]], threshold: int) -> float:
    """Evaluate a CDF produced by :func:`port_cdf` at a threshold."""
    result = 0.0
    for value, cumulative in points:
        if value <= threshold:
            result = cumulative
        else:
            break
    return result


@dataclass
class LifetimeReport:
    """Figure 4's statistics."""

    count: int
    mean: float
    quantiles: Dict[float, float]
    fraction_over_810s: float
    histogram: List[Tuple[float, int]]


def lifetime_report(
    flows: Sequence[FlowRecord],
    bin_width: float = 5.0,
    max_lifetime: float = 6000.0,
    quantiles: Iterable[float] = (0.5, 0.9, 0.95, 0.99),
) -> LifetimeReport:
    """Connection-lifetime distribution (TCP flows with observed SYN).

    The paper: average 45.84 s; 90 % under 45 s; 95 % under 4 minutes;
    under 1 % above 810 s; histogram truncated at the 6000th second.
    """
    lifetimes = [
        flow.lifetime
        for flow in flows
        if flow.pair.protocol == IPPROTO_TCP and flow.lifetime is not None
    ]
    if not lifetimes:
        raise ValueError("no TCP lifetimes observed")
    ordered = sorted(lifetimes)
    bins: Dict[int, int] = {}
    for lifetime in ordered:
        if lifetime > max_lifetime:
            continue
        bins[int(lifetime / bin_width)] = bins.get(int(lifetime / bin_width), 0) + 1
    return LifetimeReport(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        quantiles={
            q: ordered[min(len(ordered) - 1, int(q * len(ordered)))] for q in quantiles
        },
        fraction_over_810s=sum(1 for value in ordered if value > 810.0) / len(ordered),
        histogram=[(index * bin_width, bins[index]) for index in sorted(bins)],
    )


@dataclass
class UtilizationSummary:
    """The section 3.3 headline aggregates."""

    connections: int
    tcp_connection_share: float
    udp_connection_share: float
    total_bytes: int
    tcp_byte_share: float
    upload_byte_share: float
    mean_throughput_mbps: float


def utilization_summary(
    flows: Sequence[FlowRecord], duration: float, upload_bytes: int
) -> UtilizationSummary:
    """Aggregate shares; ``upload_bytes`` comes from the packet pass (flow
    records alone cannot attribute direction per byte once merged)."""
    if duration <= 0:
        raise ValueError(f"duration must be positive: {duration}")
    if not flows:
        raise ValueError("no flows")
    tcp = sum(1 for flow in flows if flow.pair.protocol == IPPROTO_TCP)
    udp = sum(1 for flow in flows if flow.pair.protocol == IPPROTO_UDP)
    total_bytes = sum(flow.bytes for flow in flows)
    tcp_bytes = sum(flow.bytes for flow in flows if flow.pair.protocol == IPPROTO_TCP)
    return UtilizationSummary(
        connections=len(flows),
        tcp_connection_share=tcp / len(flows),
        udp_connection_share=udp / len(flows),
        total_bytes=total_bytes,
        tcp_byte_share=tcp_bytes / total_bytes if total_bytes else 0.0,
        upload_byte_share=upload_bytes / total_bytes if total_bytes else 0.0,
        mean_throughput_mbps=total_bytes * 8.0 / duration / 1e6,
    )
