"""Out-in packet delay measurement — the section 3.3 three-step procedure.

1. On an *outbound* packet with socket pair σ_out at time t: record (or
   refresh) the timestamp of σ_out.
2. On an *inbound* packet with socket pair σ_in at time t: if the inverse
   pair σ̄_in was recorded at t₀, report the delay t − t₀ (and refresh? no —
   the paper reads t₀ and leaves the next outbound packet to refresh it).
3. An expiry timer T_e deletes pairs with t − t₀ > T_e, limiting the
   port-reuse artifact.

With the paper's deliberately large T_e = 600 s, connections that reuse a
five-tuple within ten minutes produce bogus "delays" equal to the reuse
gap — the peaks at multiples of 60 s in Figure 5-a.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.packet import Direction, Packet, SocketPair


class OutInDelayMeter:
    """Streaming out-in delay measurement with expiry timer ``T_e``."""

    def __init__(self, expiry: float = 600.0, gc_interval: float = 60.0) -> None:
        if expiry <= 0:
            raise ValueError(f"expiry must be positive: {expiry}")
        self.expiry = expiry
        self._timestamps: Dict[SocketPair, float] = {}
        self.delays: List[float] = []
        self._gc_interval = gc_interval
        self._next_gc: Optional[float] = None

    def observe(self, packet: Packet) -> Optional[float]:
        """Feed one packet; returns the measured delay for inbound hits."""
        if packet.direction is None:
            raise ValueError("packet has no direction set")
        now = packet.timestamp
        self._maybe_gc(now)
        if packet.direction is Direction.OUTBOUND:
            self._timestamps[packet.pair] = now
            return None
        inverse = packet.pair.inverse
        recorded = self._timestamps.get(inverse)
        if recorded is None:
            return None
        delay = now - recorded
        if delay > self.expiry:
            # Step 3: the entry outlived T_e — delete, measure nothing.
            del self._timestamps[inverse]
            return None
        if delay < 0:
            return None
        self.delays.append(delay)
        return delay

    def _maybe_gc(self, now: float) -> None:
        if self._next_gc is None:
            self._next_gc = now + self._gc_interval
            return
        if now < self._next_gc:
            return
        self._next_gc = now + self._gc_interval
        horizon = now - self.expiry
        stale = [pair for pair, stamp in self._timestamps.items() if stamp < horizon]
        for pair in stale:
            del self._timestamps[pair]

    # -- reporting ------------------------------------------------------

    def quantile(self, q: float) -> float:
        """The q-quantile of measured delays (e.g. 0.99 → Figure 5-c)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of [0,1]: {q}")
        if not self.delays:
            raise ValueError("no delays measured")
        ordered = sorted(self.delays)
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    def cdf_at(self, threshold: float) -> float:
        """Fraction of delays at or below ``threshold`` seconds."""
        if not self.delays:
            raise ValueError("no delays measured")
        return sum(1 for delay in self.delays if delay <= threshold) / len(self.delays)

    def histogram(self, bin_width: float = 1.0, max_delay: Optional[float] = None) -> List[Tuple[float, int]]:
        """(bin_start, count) pairs — Figure 5-a's raw-data view, where the
        port-reuse peaks at 60 s multiples become visible."""
        if bin_width <= 0:
            raise ValueError(f"bin_width must be positive: {bin_width}")
        limit = max_delay if max_delay is not None else self.expiry
        bins: Dict[int, int] = {}
        for delay in self.delays:
            if delay > limit:
                continue
            bins[int(delay / bin_width)] = bins.get(int(delay / bin_width), 0) + 1
        return [(index * bin_width, bins[index]) for index in sorted(bins)]

    def __len__(self) -> int:
        return len(self.delays)
