"""Application identification patterns — Table 1.

Regular expressions adapted from the L7-filter project, exactly as the
paper does ("Most of these patterns are adopted from the L7-filter
project").  Patterns are matched against a short byte stream: for TCP, the
concatenation of the first few data packets of a connection; for UDP, each
datagram payload.

Order matters: several P2P protocols tunnel over HTTP-looking requests
("GET /scrape?info_hash=", "GET /uri-res/N2R?", "GET /.hash="), so P2P
patterns are tried before the generic HTTP pattern, as L7-filter's
priority configuration does.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

# Application label constants are shared with the workload ground truth so
# classifier output can be compared against generated traffic directly.
from repro.workload.apps import (
    APP_BITTORRENT,
    APP_DNS,
    APP_EDONKEY,
    APP_FASTTRACK,
    APP_FTP,
    APP_FTP_DATA,
    APP_GNUTELLA,
    APP_HTTP,
    APP_IMAP,
    APP_SMTP,
    APP_SSH,
)

_FLAGS = re.IGNORECASE | re.DOTALL

#: (application, compiled pattern) in matching priority order.
PATTERNS: List[Tuple[str, "re.Pattern[bytes]"]] = [
    (
        APP_BITTORRENT,
        re.compile(
            rb"^\x13bittorrent protocol"
            rb"|^d1:ad2:id20:"
            rb"|^get /scrape\?info_hash="
            rb"|^get /announce\?info_hash="
            rb"|^azver\x01",
            _FLAGS,
        ),
    ),
    (
        APP_EDONKEY,
        # Protocol byte (classic 0xe3, emule 0xc5, packed 0xd4, UDP 0xe4/0xe5)
        # then up to four length bytes, then a known opcode.
        re.compile(
            rb"^[\xc5\xd4\xe3-\xe5].{0,4}?"
            rb"[\x01\x02\x05\x14\x15\x16\x18\x19\x1a\x1b\x1c\x20\x21\x32\x33"
            rb"\x34\x35\x36\x38\x40\x41\x42\x43\x46\x47\x48\x49\x4a\x4b\x4c"
            rb"\x4d\x4e\x4f\x50\x51\x52\x53\x54\x55\x56\x57\x58\x60\x81\x82"
            rb"\x90\x91\x93\x96\x97\x98\x99\x9a\x9b\x9c\x9e\xa0\xa1\xa2\xa3\xa4]",
            re.DOTALL,
        ),
    ),
    (
        APP_FASTTRACK,
        re.compile(
            rb"^get (/\.hash=[0-9a-f]*|/\.supernode|/\.network|/\.files)",
            _FLAGS,
        ),
    ),
    (
        APP_GNUTELLA,
        re.compile(
            rb"^gnd[\x01\x02]?"
            rb"|^gnutella connect/[012]\.[0-9]"
            rb"|^gnutella/[012]\.[0-9] [1-5][0-9][0-9]"
            rb"|^get /uri-res/n2r\?urn:sha1:"
            rb"|^giv [0-9]+:[0-9a-f]+"
            rb"|^get /get/[0-9]+/",
            _FLAGS,
        ),
    ),
    (
        APP_HTTP,
        re.compile(
            rb"^(get|post|head|put|delete|options|connect) \S+ http/[01]\.[019]"
            rb"|^http/[01]\.[019] [1-5][0-9][0-9]",
            _FLAGS,
        ),
    ),
    (
        APP_FTP,
        re.compile(rb"^220[\x09-\x0d -~]*ftp", _FLAGS),
    ),
    (
        APP_SSH,
        re.compile(rb"^ssh-[12]\.[0-9]", _FLAGS),
    ),
    (
        APP_SMTP,
        re.compile(rb"^220[\x09-\x0d -~]*(e?smtp|mail)", _FLAGS),
    ),
    (
        APP_IMAP,
        re.compile(rb"^\* ok.*imap", _FLAGS),
    ),
]

#: Well-known TCP service ports (port-based fallback identification).
WELL_KNOWN_TCP_PORTS: Dict[int, str] = {
    20: APP_FTP_DATA,
    21: APP_FTP,
    22: APP_SSH,
    25: APP_SMTP,
    80: APP_HTTP,
    110: "pop3",
    143: APP_IMAP,
    443: APP_HTTP,
    3128: APP_HTTP,
    8080: APP_HTTP,
    4661: APP_EDONKEY,
    4662: APP_EDONKEY,
    6346: APP_GNUTELLA,
    6347: APP_GNUTELLA,
}
WELL_KNOWN_TCP_PORTS.update({port: APP_BITTORRENT for port in range(6881, 6890)})

#: Well-known UDP ports (both endpoints' ports are considered).
WELL_KNOWN_UDP_PORTS: Dict[int, str] = {
    53: APP_DNS,
    123: "ntp",
    4661: APP_EDONKEY,
    4665: APP_EDONKEY,
    4672: APP_EDONKEY,
    6346: APP_GNUTELLA,
    6347: APP_GNUTELLA,
}
WELL_KNOWN_UDP_PORTS.update({port: APP_BITTORRENT for port in range(6881, 6890)})

#: How many bytes of stream the matcher looks at.  L7-filter inspects at
#: most a few packets; the paper concatenates "at most four TCP data
#: packets" because "most of the patterns ... are short".
MATCH_LIMIT = 2048


def match_payload(stream: bytes) -> Optional[str]:
    """Match a (possibly concatenated) payload stream against Table 1.

    Returns the application label of the first matching pattern, or None.
    """
    if not stream:
        return None
    window = stream[:MATCH_LIMIT]
    for application, pattern in PATTERNS:
        if pattern.search(window):
            return application
    return None


def port_application(protocol_is_tcp: bool, src_port: int, dst_port: int) -> Optional[str]:
    """Port-based fallback identification.

    For TCP "we only count the port number that is used by the service
    provider" — the caller passes the SYN's destination port as
    ``dst_port``.  For UDP both ports are considered (no direction signal).
    """
    if protocol_is_tcp:
        return WELL_KNOWN_TCP_PORTS.get(dst_port)
    return WELL_KNOWN_UDP_PORTS.get(dst_port) or WELL_KNOWN_UDP_PORTS.get(src_port)
