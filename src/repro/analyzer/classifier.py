"""Connection classification — the paper's two-stage identifier.

Stage 1 (payload): for every connection, match payloads against the
Table 1 patterns.  UDP datagrams are matched individually; TCP connections
are matched only if their SYN was seen, against the concatenation of the
first few data packets (per direction, since e.g. the FTP banner comes
from the server side).

Stage 2 (ports): connections that stage 1 could not identify fall back to
well-known port numbers.

Two extra strategies for file-exchange applications (section 3.2):

* **P2P endpoint propagation** — once ``{A:x -> B:y}`` is identified as a
  P2P application, *all* future connections to ``B:y`` are that
  application.
* **FTP data tracking** — the payloads of identified FTP control
  connections are scanned for PORT commands and PASV replies, and the
  announced data endpoints pre-classify the matching data connections.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analyzer.patterns import match_payload, port_application
from repro.net.flows import ConnectionTable, FlowRecord
from repro.net.inet import IPPROTO_TCP, IPPROTO_UDP
from repro.net.packet import Packet, SocketPair
from repro.workload.apps import APP_FTP, APP_FTP_DATA, APP_UNKNOWN, P2P_APPS

#: "In our program, we concatenate at most four TCP data packets."
MAX_TCP_DATA_PACKETS = 4

_PORT_COMMAND = re.compile(
    rb"(?:PORT |227[^(]*\()(\d{1,3}),(\d{1,3}),(\d{1,3}),(\d{1,3}),(\d{1,3}),(\d{1,3})",
    re.IGNORECASE,
)


def parse_ftp_endpoints(payload: bytes) -> List[Tuple[int, int]]:
    """Extract (address, port) endpoints from PORT commands / PASV replies."""
    endpoints = []
    for match in _PORT_COMMAND.finditer(payload):
        octets = [int(group) for group in match.groups()]
        if any(octet > 255 for octet in octets):
            continue
        addr = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
        port = (octets[4] << 8) | octets[5]
        if port == 0:
            continue
        endpoints.append((addr, port))
    return endpoints


class _ConnState:
    """Per-connection classification scratch state."""

    __slots__ = ("streams", "data_packets", "saw_syn", "syn_dst_port", "decided", "is_ftp_control")

    def __init__(self) -> None:
        # Index 0: packets in the orientation of the first packet seen;
        # index 1: the reverse direction.
        self.streams: List[bytes] = [b"", b""]
        self.data_packets = [0, 0]
        self.saw_syn = False
        self.syn_dst_port: Optional[int] = None
        self.decided: Optional[str] = None
        self.is_ftp_control = False


@dataclass
class ClassifierStats:
    payload_identified: int = 0
    port_identified: int = 0
    endpoint_identified: int = 0
    ftp_data_identified: int = 0
    unidentified: int = 0

    def as_dict(self) -> dict:
        return {
            "payload": self.payload_identified,
            "port": self.port_identified,
            "endpoint": self.endpoint_identified,
            "ftp_data": self.ftp_data_identified,
            "unknown": self.unidentified,
        }


class ConnectionClassifier:
    """Streaming classifier: feed packets, read applications."""

    def __init__(self, verify_checksums: bool = False) -> None:
        self.verify_checksums = verify_checksums
        self._states: Dict[SocketPair, _ConnState] = {}
        #: Service endpoints learned from identified P2P connections.
        self._p2p_endpoints: Dict[Tuple[int, int], str] = {}
        #: Data endpoints announced inside FTP control dialogues.
        self._ftp_expected: Dict[Tuple[int, int], float] = {}
        self.stats = ClassifierStats()

    def observe(self, packet: Packet, record: FlowRecord) -> Optional[str]:
        """Fold one packet in; returns the application if newly decided."""
        key = packet.pair.canonical
        state = self._states.get(key)
        if state is None:
            state = _ConnState()
            self._states[key] = state
            pre = self._preclassify(packet)
            if pre is not None:
                state.decided = pre
                record.application = pre
                return pre

        if state.decided is not None:
            if state.is_ftp_control and packet.payload:
                self._scan_ftp_control(packet)
            return None

        if packet.pair.protocol == IPPROTO_TCP:
            decided = self._observe_tcp(packet, state, record)
        else:
            decided = self._observe_udp(packet, state)

        if decided is not None:
            self._decide(state, record, decided, packet)
            return decided

        # Port fallback once payload identification is clearly exhausted.
        if self._payload_exhausted(packet, state):
            fallback = self._port_fallback(packet, state)
            self._decide(state, record, fallback or APP_UNKNOWN, packet)
            return record.application
        return None

    # -- per-protocol payload handling --------------------------------

    def _observe_tcp(
        self, packet: Packet, state: _ConnState, record: FlowRecord
    ) -> Optional[str]:
        if packet.is_syn:
            state.saw_syn = True
            state.syn_dst_port = packet.pair.dst_port
        if not packet.payload:
            return None
        # "we only examine TCP connections with an explicitly TCP-SYN packet"
        if not state.saw_syn:
            return None
        stream_index = 0 if packet.pair == record.pair else 1
        if state.data_packets[stream_index] >= MAX_TCP_DATA_PACKETS:
            return None
        state.data_packets[stream_index] += 1
        state.streams[stream_index] += packet.payload
        return match_payload(state.streams[stream_index])

    def _observe_udp(self, packet: Packet, state: _ConnState) -> Optional[str]:
        if not packet.payload:
            return None
        state.data_packets[0] += 1
        return match_payload(packet.payload)

    # -- decision plumbing ---------------------------------------------

    def _preclassify(self, packet: Packet) -> Optional[str]:
        """Check learned P2P endpoints and announced FTP data endpoints."""
        pair = packet.pair
        for endpoint in ((pair.dst_addr, pair.dst_port), (pair.src_addr, pair.src_port)):
            application = self._p2p_endpoints.get(endpoint)
            if application is not None:
                self.stats.endpoint_identified += 1
                return application
            if endpoint in self._ftp_expected:
                del self._ftp_expected[endpoint]
                self.stats.ftp_data_identified += 1
                return APP_FTP_DATA
        return None

    def _decide(
        self, state: _ConnState, record: FlowRecord, application: str, packet: Packet
    ) -> None:
        state.decided = application
        record.application = application
        if application == APP_UNKNOWN:
            self.stats.unidentified += 1
        elif state.streams[0] or state.streams[1] or packet.pair.protocol == IPPROTO_UDP:
            self.stats.payload_identified += 1
        else:
            self.stats.port_identified += 1
        if application in P2P_APPS:
            # Strategy 1: remember the service endpoint (B:y of the SYN for
            # TCP; for UDP, the responder's endpoint is unknowable, so both
            # fixed well-known-looking endpoints would be noise — the paper
            # applies this to identified connections, which we take as TCP).
            if packet.pair.protocol == IPPROTO_TCP and state.syn_dst_port is not None:
                pair = packet.pair if packet.pair.dst_port == state.syn_dst_port else packet.pair.inverse
                self._p2p_endpoints[(pair.dst_addr, pair.dst_port)] = application
        if application == APP_FTP:
            state.is_ftp_control = True
            self._scan_ftp_control(packet)

    def _scan_ftp_control(self, packet: Packet) -> None:
        """Strategy 2: learn announced data endpoints from control payloads."""
        if not packet.payload:
            return
        for endpoint in parse_ftp_endpoints(packet.payload):
            self._ftp_expected[endpoint] = packet.timestamp

    def _payload_exhausted(self, packet: Packet, state: _ConnState) -> bool:
        """True once payload matching can no longer succeed."""
        if packet.pair.protocol == IPPROTO_TCP:
            if packet.is_fin or packet.is_rst:
                return True
            if not state.saw_syn:
                # Mid-stream capture: payload matching is disallowed, ports
                # are all we will ever have.
                return packet.payload != b"" or packet.is_synack
            return min(state.data_packets) >= MAX_TCP_DATA_PACKETS or (
                max(state.data_packets) >= MAX_TCP_DATA_PACKETS
            )
        return state.data_packets[0] >= 2

    def _port_fallback(self, packet: Packet, state: _ConnState) -> Optional[str]:
        pair = packet.pair
        if pair.protocol == IPPROTO_TCP:
            dst_port = state.syn_dst_port if state.syn_dst_port is not None else pair.dst_port
            return port_application(True, 0, dst_port)
        return port_application(False, pair.src_port, pair.dst_port)

    def finalize(self, table: ConnectionTable) -> None:
        """End-of-trace: force a fallback decision for undecided flows."""
        for record in table.all_flows():
            if record.application is not None:
                continue
            state = self._states.get(record.pair.canonical)
            if state is not None and state.decided is not None:
                # A later flow on a reused five-tuple: inherit the pair's
                # established identity (same endpoints, same application).
                record.application = state.decided
                continue
            if record.pair.protocol == IPPROTO_TCP:
                dst_port = (
                    state.syn_dst_port
                    if state is not None and state.syn_dst_port is not None
                    else record.pair.dst_port
                )
                application = port_application(True, 0, dst_port)
            else:
                application = port_application(
                    False, record.pair.src_port, record.pair.dst_port
                )
            record.application = application or APP_UNKNOWN
            if record.application == APP_UNKNOWN:
                self.stats.unidentified += 1
            else:
                self.stats.port_identified += 1


class TrafficAnalyzer:
    """The full section-3.2 analyzer: flows + classification + delays.

    Feed packets in timestamp order via :meth:`observe` (or analyze a whole
    iterable with :meth:`analyze`); finished flow records carry packets,
    bytes, lifetimes and application labels.
    """

    def __init__(
        self,
        udp_timeout: float = 120.0,
        outin_expiry: float = 600.0,
        track_outin: bool = True,
    ) -> None:
        from repro.analyzer.outin import OutInDelayMeter

        self.table = ConnectionTable(udp_timeout=udp_timeout)
        self.classifier = ConnectionClassifier()
        self.outin = OutInDelayMeter(expiry=outin_expiry) if track_outin else None
        self.packets_seen = 0
        self.bytes_seen = 0

    def observe(self, packet: Packet) -> FlowRecord:
        self.packets_seen += 1
        self.bytes_seen += packet.size
        record = self.table.observe(packet)
        self.classifier.observe(packet, record)
        if self.outin is not None and packet.direction is not None:
            self.outin.observe(packet)
        return record

    def analyze(self, packets: Iterable[Packet]) -> "TrafficAnalyzer":
        for packet in packets:
            self.observe(packet)
        self.finalize()
        return self

    def finalize(self) -> None:
        self.table.flush()
        self.classifier.finalize(self.table)

    @property
    def flows(self) -> List[FlowRecord]:
        return self.table.finished
