"""The defense side of the closed loop: live retuning and recovery time.

A :class:`RetuneLoop` pairs a :class:`repro.core.autotune.TargetRateController`
with an *applier* that pushes each new ``P_d`` into the filter.  Two
appliers ship:

* :class:`DirectApplier` mutates the filter's
  :class:`~repro.core.dropper.StaticDropPolicy` in-process — the fast
  path for benches and tests;
* :class:`ControlApplier` sends ``config probability=...`` through a
  live :class:`~repro.service.control.ControlClient`, exercising the
  real control plane end to end.

Because the swarm engine fires retune probes at fixed *trace-time*
intervals and the control request is a synchronous round trip, the
mutation lands deterministically between swarm events: a control-plane
run is bit-identical to a direct-apply run (the determinism tests pin
this).  :func:`launch_control_service` starts a real
:class:`~repro.service.service.FilterService` over an
:class:`~repro.service.sources.IdleSource` in a background thread,
wrapping the *same* filter object the swarm pipeline adjudicates with,
so the service's ``_apply_config`` mutation is visible to the very next
swarm packet.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

from repro.core.autotune import TargetRateController
from repro.core.dropper import StaticDropPolicy
from repro.filters.base import PacketFilter
from repro.filters.policy import DropController


class DirectApplier:
    """Apply ``P_d`` straight onto the filter's static drop policy."""

    name = "direct"

    def __init__(self, drop_controller: DropController) -> None:
        if not isinstance(drop_controller.policy, StaticDropPolicy):
            raise ValueError(
                "retuning P_d needs a StaticDropPolicy on the filter "
                f"(got {type(drop_controller.policy).__name__}); the "
                "TargetRateController lives in the RetuneLoop"
            )
        self._policy = drop_controller.policy

    def apply(self, probability: float) -> None:
        self._policy._probability = probability

    def close(self) -> None:
        pass


class ControlApplier:
    """Apply ``P_d`` through a live control socket (the real plane)."""

    name = "control"

    def __init__(self, client) -> None:
        self._client = client

    def apply(self, probability: float) -> None:
        self._client.configure(probability=probability)

    def close(self) -> None:
        pass


class RetuneLoop:
    """Probe the uplink every ``interval`` trace seconds, steer ``P_d``.

    ``tolerance`` and ``hold`` define the recovery criterion: the bound
    counts as re-established at the first probe whose measured uplink is
    at or below ``target × (1 + tolerance)`` and *stays* there for
    ``hold`` consecutive probes.
    """

    def __init__(
        self,
        controller: TargetRateController,
        applier,
        interval: float = 5.0,
        tolerance: float = 0.1,
        hold: int = 2,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        if tolerance < 0:
            raise ValueError(f"tolerance must be >= 0: {tolerance}")
        if hold < 1:
            raise ValueError(f"hold must be >= 1: {hold}")
        self.controller = controller
        self.applier = applier
        self.interval = interval
        self.tolerance = tolerance
        self.hold = hold
        #: (trace time, measured bps, applied P_d) per probe.
        self.log: List[Tuple[float, float, float]] = []

    @property
    def target_bps(self) -> float:
        return self.controller.target_bps

    def probe(self, now: float, measured_bps: float) -> float:
        """One control step: observe, compute, apply, log."""
        probability = self.controller.probability(measured_bps)
        self.applier.apply(probability)
        self.log.append((now, measured_bps, probability))
        return probability

    def recovery_time(self, onset: Optional[float]) -> Optional[float]:
        """Seconds from evasion onset to the bound being re-established,
        or ``None`` when the bound never recovered (or evasion never
        started)."""
        if onset is None:
            return None
        bound = self.target_bps * (1.0 + self.tolerance)
        run = 0
        recovered_at: Optional[float] = None
        for when, measured, _ in self.log:
            if when < onset:
                continue
            if measured <= bound:
                if run == 0:
                    recovered_at = when
                run += 1
                if run >= self.hold:
                    return max(0.0, recovered_at - onset)
            else:
                run = 0
                recovered_at = None
        return None

    def close(self) -> None:
        self.applier.close()


class ControlServiceHandle:
    """A live :class:`FilterService` over an idle source, in a thread.

    The service wraps the *shared* filter instance and serves the control
    socket; the swarm's synchronous ``ControlClient`` round trips land
    their mutations between swarm events.  ``close()`` shuts the service
    down through its own control plane and joins the thread.
    """

    def __init__(self, service, thread: threading.Thread, address: str) -> None:
        self.service = service
        self.thread = thread
        self.address = address
        self._client = None

    def client(self, connect_retry: float = 10.0):
        from repro.service.control import ControlClient

        if self._client is None:
            self._client = ControlClient(self.address, connect_retry=connect_retry)
        return self._client

    def close(self) -> None:
        from repro.service.control import ControlError

        try:
            self.client().shutdown()
        except (ControlError, OSError):
            pass
        if self._client is not None:
            self._client.close()
            self._client = None
        self.thread.join(timeout=10.0)

    def __enter__(self) -> "ControlServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def launch_control_service(
    packet_filter: PacketFilter, address: str
) -> ControlServiceHandle:
    """Start a control-serving :class:`FilterService` around
    ``packet_filter`` in a daemon thread and return its handle.

    The service ingests nothing (:class:`IdleSource`); its only job is to
    hold the warm filter and answer control requests — ``config``
    mutations apply to the same object the swarm pipeline consults.
    """
    from repro.service.service import FilterService
    from repro.service.sources import IdleSource

    service = FilterService(
        IdleSource(poll_interval=0.01),
        packet_filter,
        use_blocklist=False,
        control=address,
    )
    thread = threading.Thread(
        target=service.run_forever, name="swarm-control-service", daemon=True
    )
    thread.start()
    return ControlServiceHandle(service, thread, address)
