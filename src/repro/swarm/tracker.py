"""A deterministic BitTorrent-style tracker.

Serves announce/re-announce with a per-actor minimum interval (the
tracker-imposed back-off real trackers enforce), returns peer samples,
and keeps a recency list so freshly (re-)announced peers are what inside
clients learn about next — which is exactly why the ``reannounce``
evasion tactic works: the refused peer re-announces, an inside client's
next announce returns it, and the client may dial *outbound*.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class TrackerEntry:
    """One swarm member as the tracker advertises it."""

    kind: str  # "client" (inside) or "peer" (outside)
    index: int
    addr: int
    port: int
    #: The member's latest announce was an evasive re-announce.
    evasive: bool = False


class AnnounceResult:
    """Outcome of one announce: either a peer sample, or "come back at"."""

    __slots__ = ("sample", "interval", "retry_at")

    def __init__(
        self,
        sample: Optional[List[TrackerEntry]] = None,
        interval: float = 0.0,
        retry_at: Optional[float] = None,
    ) -> None:
        self.sample = sample
        self.interval = interval
        self.retry_at = retry_at

    @property
    def accepted(self) -> bool:
        return self.sample is not None


class Tracker:
    """Announce registry with back-off enforcement and recency sampling."""

    def __init__(
        self,
        rng: random.Random,
        min_interval: float = 10.0,
        announce_interval: float = 30.0,
        numwant: int = 8,
        recent_window: int = 32,
    ) -> None:
        if min_interval <= 0:
            raise ValueError(f"min_interval must be positive: {min_interval}")
        if announce_interval < min_interval:
            raise ValueError("announce_interval must be >= min_interval")
        if numwant < 1:
            raise ValueError(f"numwant must be >= 1: {numwant}")
        self.rng = rng
        self.min_interval = min_interval
        self.announce_interval = announce_interval
        self.numwant = numwant
        self.recent_window = recent_window
        #: Registered members keyed by (kind, index), insertion-ordered.
        self._members: Dict[tuple, TrackerEntry] = {}
        #: Per-actor earliest next accepted announce.
        self._allowed_at: Dict[tuple, float] = {}
        #: Outside peers in most-recent-announce-first order.
        self._recent_peers: List[tuple] = []

    def register(self, entry: TrackerEntry) -> None:
        key = (entry.kind, entry.index)
        self._members[key] = entry
        if entry.kind == "peer" and key not in self._recent_peers:
            self._recent_peers.append(key)

    def earliest_announce(self, kind: str, index: int) -> float:
        return self._allowed_at.get((kind, index), 0.0)

    def announce(
        self, kind: str, index: int, now: float, evasive: bool = False
    ) -> AnnounceResult:
        """One announce at trace time ``now``.

        Early re-announces are refused with the time to come back at —
        the caller's back-off.  Accepted announces refresh the member's
        recency position, record the ``evasive`` flag, and return a
        sample: outside peers get inside clients to dial; inside clients
        get the most recently announced outside peers.
        """
        key = (kind, index)
        if key not in self._members:
            raise KeyError(f"unregistered swarm member: {key}")
        allowed = self._allowed_at.get(key, 0.0)
        if now < allowed:
            return AnnounceResult(retry_at=allowed)
        self._allowed_at[key] = now + self.min_interval
        entry = self._members[key]
        entry.evasive = evasive
        if kind == "peer":
            try:
                self._recent_peers.remove(key)
            except ValueError:
                pass
            self._recent_peers.insert(0, key)
            sample = self._sample("client")
        else:
            sample = self._sample_recent_peers()
        return AnnounceResult(sample=sample, interval=self.announce_interval)

    def _sample(self, kind: str) -> List[TrackerEntry]:
        pool = [entry for entry in self._members.values() if entry.kind == kind]
        if len(pool) <= self.numwant:
            return list(pool)
        return self.rng.sample(pool, self.numwant)

    def _sample_recent_peers(self) -> List[TrackerEntry]:
        """Up to ``numwant`` outside peers, biased to recent announcers:
        the window holds the most recent ``recent_window`` announcers and
        the sample is drawn from it, so a just-re-announced peer is far
        more likely to reach a client than one announced long ago."""
        window = [
            self._members[key]
            for key in self._recent_peers[: self.recent_window]
        ]
        if len(window) <= self.numwant:
            return list(window)
        return self.rng.sample(window, self.numwant)
