"""The adversarial closed-loop swarm engine.

Extends the connection-level heapq pattern of
:mod:`repro.sim.closedloop` into a full discrete-event simulation: one
heap interleaves packet deliveries with swarm *events* — tracker
announces, choker rechokes, optimistic-unchoke rotations, upload bursts,
evasion reactions, hole-punch probes, retune probes — and every packet
is adjudicated by the configured :class:`~repro.filters.base.PacketFilter`
through the same :class:`~repro.sim.pipeline.ReplayPipeline` stages as
open-loop replay.

The loop closes in both directions:

* **attack** — a refused admission triggers the
  :class:`~repro.swarm.evasion.EvasionPolicy` reaction chain (re-announce,
  port hop, PEX, hole punch, churn), so the traffic the filter sees is a
  function of its own verdicts;
* **defense** — an optional :class:`~repro.swarm.retune.RetuneLoop`
  probes the measured uplink at fixed trace-time intervals and steers
  ``P_d`` (in-process or through a live ``FilterService`` control
  socket), so the filter's parameters are a function of the swarm's
  success.

Determinism: every RNG stream is derived via
:func:`repro.core.hashing.derive_seed` from the run seed and a domain
constant (engine, tracker, per-client, per-peer, per-attempt, per-link,
background) — same seed, same :class:`SwarmResult`, bit for bit,
including the pipeline's verdict fingerprint.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.hashing import derive_seed
from repro.filters.base import PacketFilter, Verdict
from repro.net.headers import TCPFlags
from repro.net.inet import IPPROTO_TCP
from repro.net.packet import Direction, Packet, SocketPair
from repro.sim.pipeline import PipelineConfig, ReplayPipeline, ReplayResult
from repro.swarm.evasion import (
    ALL_TACTICS,
    EvasionPolicy,
    TACTIC_CHURN,
    TACTIC_HOLE_PUNCH,
    TACTIC_INITIAL,
    TACTIC_PEX,
    TACTIC_PORT_HOP,
    TACTIC_REANNOUNCE,
)
from repro.swarm.peers import ClientPeer, PeerLink, SwarmPeer
from repro.swarm.retune import RetuneLoop
from repro.swarm.tracker import Tracker, TrackerEntry
from repro.workload.apps import (
    APP_BITTORRENT,
    APP_FACTORIES,
    BITTORRENT_PORTS,
    ConnectionSpec,
    Initiator,
    bittorrent_handshake,
    connection_packets,
    _listen_port,
)
from repro.workload.distributions import out_in_delay, split_bytes
from repro.workload.topology import AddressSpace, ClientNetwork, HostModel

# Seed-derivation domains — one independent splitmix64 stream family per
# subsystem, all rooted at the run seed.
_D_TRACKER = 0x5452414B
_D_CLIENT = 0x434C4E54
_D_PEER = 0x50454552
_D_ADDRESSES = 0x41445253
_D_ATTEMPT = 0x41545054
_D_LINK = 0x4C494E4B
_D_BACKGROUND = 0x42474D58

_IP_TCP_HEADERS = 40  # bare IP + TCP header bytes


@dataclass
class SwarmConfig:
    """Everything that shapes one swarm run."""

    peers: int = 16
    clients: int = 4
    duration: float = 120.0
    seed: int = 0
    network: str = "10.1.0.0"
    prefix_len: int = 16
    # Choker (BUTorrent defaults scaled down).
    unchoke_slots: int = 3
    rechoke_interval: float = 10.0
    optimistic_rounds: int = 3
    # Tracker.
    announce_interval: float = 30.0
    tracker_min_interval: float = 10.0
    numwant: int = 8
    # Transfers.
    upload_rate: int = 24_000  # bytes/s per unchoked link
    burst_packet: int = 1200
    # Peer dialing.
    max_targets: int = 2
    reverse_connect_probability: float = 0.35
    max_reverse_links: int = 2
    #: Mean lifetime of an established inbound link before the peer
    #: churns away and must re-establish (0 = links persist forever).
    #: Churn is what closes the defense loop: once ``P_d`` rises, the
    #: redials get refused and the upload decays back under the bound.
    link_lifetime: float = 45.0
    # Non-P2P background mix (collateral-damage probe).
    background_rate: float = 1.0  # connections/s across the client net
    # Admission mechanics (same semantics as ClosedLoopSimulator).
    admission_window: int = 3
    throughput_interval: float = 1.0
    use_blocklist: bool = False
    evasion: EvasionPolicy = field(default_factory=EvasionPolicy)

    def __post_init__(self) -> None:
        if self.peers < 1:
            raise ValueError(f"peers must be >= 1: {self.peers}")
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1: {self.clients}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if self.admission_window < 1:
            raise ValueError(
                f"admission_window must be >= 1: {self.admission_window}"
            )
        if self.background_rate < 0:
            raise ValueError(
                f"background_rate must be >= 0: {self.background_rate}"
            )


@dataclass
class SwarmResult:
    """Everything one swarm run measured."""

    peers: int
    clients: int
    duration: float
    seed: int
    # Inbound swarm connection attempts (the filter's admission decisions).
    attempts_total: int = 0
    attempts_admitted: int = 0
    attempts_refused: int = 0
    #: Attempt / success counts per tactic label (includes reannounce
    #: credits for evasion-triggered reverse connections).
    tactic_attempts: Dict[str, int] = field(default_factory=dict)
    tactic_successes: Dict[str, int] = field(default_factory=dict)
    #: Peers with at least one established inbound connection.
    peers_penetrated: int = 0
    #: Client-initiated connections to swarm peers (upload that escapes
    #: on outbound-initiated connections — no inbound admission at all).
    reverse_connections: int = 0
    hole_punch_probes: int = 0
    # Upload actually delivered to the swarm (passed outbound bytes).
    burst_upload_bytes: int = 0
    reverse_upload_bytes: int = 0
    # Non-P2P background mix (collateral damage).
    background_total: int = 0
    background_admitted: int = 0
    background_refused: int = 0
    background_refused_by_initiator: Dict[str, int] = field(default_factory=dict)
    #: Timestamps of refused swarm admissions (evasion latency analysis).
    refusal_times: List[float] = field(default_factory=list)
    #: Timestamps of refused background admissions.
    background_refusal_times: List[float] = field(default_factory=list)
    #: First refused swarm admission — when the fight started.
    evasion_onset: Optional[float] = None
    #: (time, Mbps) of admitted outbound traffic per interval.
    uplink_mbps: List[Tuple[float, float]] = field(default_factory=list)
    #: (time, measured bps, applied P_d) per retune probe.
    retune_log: List[Tuple[float, float, float]] = field(default_factory=list)
    #: Seconds from evasion onset to the upload bound re-established.
    recovery_time: Optional[float] = None
    replay: Optional[ReplayResult] = None

    @property
    def penetration_probability(self) -> float:
        """Fraction of inbound swarm attempts the filter admitted."""
        if self.attempts_total == 0:
            return 0.0
        return self.attempts_admitted / self.attempts_total

    @property
    def peer_penetration_rate(self) -> float:
        """Fraction of peers that got at least one inbound connection in."""
        return self.peers_penetrated / self.peers if self.peers else 0.0

    @property
    def background_refusal_rate(self) -> float:
        """Collateral damage: fraction of non-P2P connections refused."""
        if self.background_total == 0:
            return 0.0
        return self.background_refused / self.background_total

    @property
    def swarm_upload_bytes(self) -> int:
        return self.burst_upload_bytes + self.reverse_upload_bytes

    def as_dict(self) -> dict:
        """JSON-ready, deterministic representation (the determinism tests
        and the CI double-run diff compare this verbatim, fingerprint
        included)."""
        replay = self.replay
        return {
            "peers": self.peers,
            "clients": self.clients,
            "duration": self.duration,
            "seed": self.seed,
            "attempts": {
                "total": self.attempts_total,
                "admitted": self.attempts_admitted,
                "refused": self.attempts_refused,
            },
            "penetration_probability": self.penetration_probability,
            "peer_penetration_rate": self.peer_penetration_rate,
            "tactic_attempts": {
                tactic: self.tactic_attempts.get(tactic, 0)
                for tactic in ALL_TACTICS
            },
            "tactic_successes": {
                tactic: self.tactic_successes.get(tactic, 0)
                for tactic in ALL_TACTICS
            },
            "reverse_connections": self.reverse_connections,
            "hole_punch_probes": self.hole_punch_probes,
            "burst_upload_bytes": self.burst_upload_bytes,
            "reverse_upload_bytes": self.reverse_upload_bytes,
            "background": {
                "total": self.background_total,
                "admitted": self.background_admitted,
                "refused": self.background_refused,
                "refused_by_initiator": dict(
                    sorted(self.background_refused_by_initiator.items())
                ),
                "refusal_rate": self.background_refusal_rate,
            },
            "refusal_times": [round(t, 6) for t in self.refusal_times],
            "evasion_onset": self.evasion_onset,
            "uplink_mbps": [
                (round(t, 6), round(mbps, 9)) for t, mbps in self.uplink_mbps
            ],
            "retune_log": [
                (round(t, 6), round(bps, 3), round(p, 9))
                for t, bps, p in self.retune_log
            ],
            "recovery_time": self.recovery_time,
            "packets": replay.packets if replay else 0,
            "inbound_dropped": replay.inbound_dropped if replay else 0,
            "fingerprint": replay.fingerprint if replay else None,
        }


class _Live:
    """A connection with packets still to deliver (one heap entry role)."""

    __slots__ = ("schedule", "position", "counted", "kind", "peer", "client",
                 "tactic", "link", "window", "evasive")

    def __init__(self, schedule, kind, window, peer=None, client=None,
                 tactic="", link=None, evasive=False):
        self.schedule = schedule
        self.position = 0
        self.counted = False
        self.kind = kind  # "attempt" | "background" | "reverse" | "burst"
        self.peer = peer
        self.client = client
        self.tactic = tactic
        self.link = link
        self.window = window
        self.evasive = evasive


class SwarmSimulator:
    """Run one adversarial swarm against one packet filter."""

    def __init__(
        self,
        packet_filter: PacketFilter,
        config: Optional[SwarmConfig] = None,
        retune: Optional[RetuneLoop] = None,
    ) -> None:
        self.filter = packet_filter
        self.config = config or SwarmConfig()
        self.retune = retune

    # -- setup ----------------------------------------------------------

    def _build_world(self):
        config = self.config
        seed = config.seed
        network = ClientNetwork(
            config.network, config.prefix_len, hosts=config.clients
        )
        addresses = AddressSpace(network, seed=derive_seed(seed, _D_ADDRESSES))
        clients: List[ClientPeer] = []
        for index, addr in enumerate(network.clients):
            rng = random.Random(derive_seed(derive_seed(seed, _D_CLIENT), index))
            host = HostModel(addr, rng)
            listen = _listen_port(host, rng, APP_BITTORRENT, BITTORRENT_PORTS)
            clients.append(ClientPeer(
                index, host, listen, rng,
                unchoke_slots=config.unchoke_slots,
                optimistic_rounds=config.optimistic_rounds,
            ))
        peer_addrs = addresses.sticky_peers("swarm", config.peers)
        peers: List[SwarmPeer] = []
        for index, addr in enumerate(peer_addrs):
            rng = random.Random(derive_seed(derive_seed(seed, _D_PEER), index))
            listen = rng.choice(BITTORRENT_PORTS)
            peers.append(SwarmPeer(index, addr, listen, rng))
        tracker = Tracker(
            rng=random.Random(derive_seed(seed, _D_TRACKER)),
            min_interval=config.tracker_min_interval,
            announce_interval=config.announce_interval,
            numwant=config.numwant,
        )
        for client in clients:
            tracker.register(TrackerEntry(
                "client", client.index, client.addr, client.listen_port
            ))
        for peer in peers:
            tracker.register(TrackerEntry(
                "peer", peer.index, peer.addr, peer.listen_port
            ))
        return network, addresses, clients, peers, tracker

    def _background_specs(self, clients, addresses) -> List[ConnectionSpec]:
        """Poisson non-P2P arrivals across the inside hosts (the mix the
        collateral-damage metric watches)."""
        config = self.config
        if config.background_rate <= 0:
            return []
        rng = random.Random(derive_seed(config.seed, _D_BACKGROUND))
        apps = [("http", 0.50), ("dns", 0.25), ("other", 0.15), ("ftp", 0.10)]
        specs: List[ConnectionSpec] = []
        now = 0.0
        while True:
            now += rng.expovariate(config.background_rate)
            if now >= config.duration:
                break
            draw = rng.random()
            cumulative = 0.0
            app = apps[-1][0]
            for name, weight in apps:
                cumulative += weight
                if draw < cumulative:
                    app = name
                    break
            client = rng.choice(clients)
            specs.extend(APP_FACTORIES[app](rng, client.host, addresses, now))
        specs.sort(key=lambda spec: (spec.start, spec.client_port))
        return specs

    # -- the event loop -------------------------------------------------

    def run(self) -> SwarmResult:
        config = self.config
        seed = config.seed
        policy = config.evasion
        duration = config.duration
        pipeline = ReplayPipeline(PipelineConfig(
            packet_filter=self.filter,
            use_blocklist=config.use_blocklist,
            throughput_interval=config.throughput_interval,
            record_fingerprint=True,
        ))
        network, addresses, clients, peers, tracker = self._build_world()
        result = SwarmResult(
            peers=config.peers, clients=config.clients,
            duration=duration, seed=seed,
        )
        self._result = result
        self._pipeline = pipeline
        self._clients = clients
        self._peers = peers
        self._tracker = tracker

        heap: List[tuple] = []
        self._heap = heap
        self._seq = 0
        self._attempt_id = 0
        self._link_id = 0
        self._window_bytes = 0

        def push(when: float, item) -> None:
            self._seq += 1
            heapq.heappush(heap, (when, self._seq, item))

        self._push = push

        # Bootstrap: staggered first announces, choker ticks, background
        # arrivals, retune probes.
        for client in clients:
            push(0.2 + 0.1 * client.index, ("announce-client", client))
            push(config.rechoke_interval + 0.01 * client.index,
                 ("rechoke", client))
        for peer in peers:
            jitter = peer.rng.uniform(0.0, min(5.0, duration / 4))
            push(jitter, ("announce-peer", peer, False))
        for spec in self._background_specs(clients, addresses):
            push(spec.start, ("background", spec))
        if self.retune is not None:
            push(self.retune.interval, ("retune",))

        admission_window = config.admission_window
        OUTBOUND = Direction.OUTBOUND
        PASS = Verdict.PASS

        while heap:
            when, ident, item = heapq.heappop(heap)
            if not isinstance(item, _Live):
                self._handle_event(when, item)
                continue
            live = item
            packet = live.schedule[live.position]
            verdict = pipeline.process(packet)
            if verdict is PASS:
                if packet.direction is OUTBOUND:
                    self._account_outbound(live, packet)
                live.position += 1
                if live.position >= len(live.schedule):
                    if not live.counted:
                        live.counted = True
                        self._on_admitted(live, packet.timestamp)
                else:
                    if live.position > live.window and not live.counted:
                        live.counted = True
                        self._on_admitted(live, packet.timestamp)
                    heapq.heappush(
                        heap,
                        (live.schedule[live.position].timestamp, ident, live),
                    )
            else:
                if live.position < live.window and not live.counted:
                    # Admission refused: this connection never happens.
                    self._on_refused(live, packet.timestamp, policy)
                else:
                    # Established (or window-less burst): recoverable loss.
                    live.position += 1
                    if live.position < len(live.schedule):
                        heapq.heappush(
                            heap,
                            (live.schedule[live.position].timestamp, ident, live),
                        )

        result.replay = pipeline.finalize()
        result.uplink_mbps = pipeline.router.passed.series_mbps(OUTBOUND)
        result.peers_penetrated = sum(1 for peer in peers if peer.penetrated)
        if self.retune is not None:
            result.retune_log = list(self.retune.log)
            result.recovery_time = self.retune.recovery_time(
                result.evasion_onset
            )
        return result

    # -- packet accounting ----------------------------------------------

    def _account_outbound(self, live: _Live, packet: Packet) -> None:
        self._window_bytes += packet.size
        now, size = packet.timestamp, packet.size
        if live.kind == "burst":
            link = live.link
            link.measure.update(now, size)
            link.peer.measure.update(now, size)
            self._result.burst_upload_bytes += size
        elif live.kind == "reverse" and live.peer is not None:
            live.peer.measure.update(now, size)
            self._result.reverse_upload_bytes += size

    # -- admission outcomes ---------------------------------------------

    def _on_admitted(self, live: _Live, now: float) -> None:
        result = self._result
        if live.kind == "attempt":
            peer, client = live.peer, live.client
            result.attempts_admitted += 1
            result.tactic_successes[live.tactic] = (
                result.tactic_successes.get(live.tactic, 0) + 1
            )
            peer.in_flight.pop(client.index, None)
            link = self._make_link(
                client, peer, live.tactic, now,
                outbound=False,
                client_port=client.listen_port,
                remote_port=live.schedule[0].pair.src_port
                if live.schedule[0].direction is Direction.INBOUND
                else live.schedule[0].pair.dst_port,
            )
            client.add_link(link)
            peer.links[client.index] = link
            peer.was_penetrated = True
            # Fresh link: the old refusal chain is forgiven — a later
            # churn-and-redial gets a full evasion budget again.
            peer.refusals.pop(client.index, None)
            if client.free_slots() > 0:
                link.unchoked = True
                self._push(now + 0.1, ("burst", link))
            lifetime = self.config.link_lifetime
            if lifetime > 0:
                churn_at = now + lifetime * link.rng.uniform(0.75, 1.25)
                if churn_at < self.config.duration:
                    self._push(churn_at, ("disconnect", link))
        elif live.kind == "reverse":
            peer, client = live.peer, live.client
            result.reverse_connections += 1
            if live.evasive:
                result.tactic_successes[TACTIC_REANNOUNCE] = (
                    result.tactic_successes.get(TACTIC_REANNOUNCE, 0) + 1
                )
            link = self._make_link(client, peer, TACTIC_REANNOUNCE if
                                   live.evasive else TACTIC_INITIAL, now,
                                   outbound=True)
            peer.links.setdefault(client.index, link)
        elif live.kind == "background":
            result.background_admitted += 1

    def _on_refused(self, live: _Live, now: float, policy: EvasionPolicy) -> None:
        result = self._result
        live.counted = True  # terminal: never delivered, never admitted
        if live.kind == "background":
            result.background_refused += 1
            initiator = live.tactic  # carries the initiator label
            result.background_refused_by_initiator[initiator] = (
                result.background_refused_by_initiator.get(initiator, 0) + 1
            )
            result.background_refusal_times.append(now)
            return
        if live.kind == "reverse":
            # Client-initiated dial refused (blocklist or chain member
            # dropping outbound) — rare; no evasion from the client side.
            return
        # Inbound swarm attempt.
        peer, client = live.peer, live.client
        result.attempts_refused += 1
        result.refusal_times.append(now)
        if result.evasion_onset is None:
            result.evasion_onset = now
        peer.in_flight.pop(client.index, None)
        refusals = peer.refusals.get(client.index, 0) + 1
        peer.refusals[client.index] = refusals
        if not policy.any_enabled or refusals > policy.max_attempts:
            peer.abandoned[client.index] = True
            return
        tactic = policy.tactic_for(refusals - 1)
        delay = policy.backoff_for(refusals - 1)
        when = now + delay
        if when >= self.config.duration:
            return
        if tactic == TACTIC_PORT_HOP:
            self._push(when, ("attempt", peer, client, TACTIC_PORT_HOP, None))
        elif tactic == TACTIC_REANNOUNCE:
            earliest = self._tracker.earliest_announce("peer", peer.index)
            self._push(max(when, earliest), ("announce-peer", peer, True))
        elif tactic == TACTIC_HOLE_PUNCH:
            self._push(when, ("punch", peer, client))
        elif tactic == TACTIC_PEX:
            self._push(when, ("pex", peer, client))
        elif tactic == TACTIC_CHURN:
            self._push(when, ("churn", peer, client))

    def _make_link(self, client, peer, tactic, now, outbound,
                   client_port=0, remote_port=0) -> PeerLink:
        self._link_id += 1
        rng = random.Random(
            derive_seed(derive_seed(self.config.seed, _D_LINK), self._link_id)
        )
        return PeerLink(
            self._link_id, client, peer, tactic, now, rng,
            outbound=outbound, client_port=client_port,
            remote_port=remote_port,
        )

    # -- event handlers --------------------------------------------------

    def _handle_event(self, now: float, item: tuple) -> None:
        kind = item[0]
        if kind == "attempt":
            _, peer, client, tactic, remote_port = item
            self._launch_attempt(now, peer, client, tactic, remote_port)
        elif kind == "burst":
            self._launch_burst(now, item[1])
        elif kind == "rechoke":
            self._rechoke(now, item[1])
        elif kind == "announce-peer":
            self._announce_peer(now, item[1], item[2])
        elif kind == "announce-client":
            self._announce_client(now, item[1])
        elif kind == "connect":
            self._connect(now, item[1], item[2])
        elif kind == "punch":
            self._hole_punch(now, item[1], item[2])
        elif kind == "pex":
            self._pex_retry(now, item[1], item[2])
        elif kind == "churn":
            self._churn(now, item[1], item[2])
        elif kind == "disconnect":
            self._disconnect(now, item[1])
        elif kind == "reverse":
            self._launch_reverse(now, item[1], item[2], item[3])
        elif kind == "background":
            self._launch_background(now, item[1])
        elif kind == "retune":
            self._retune_probe(now)

    # Tracker interactions.

    def _announce_peer(self, now: float, peer: SwarmPeer, evasive: bool) -> None:
        outcome = self._tracker.announce("peer", peer.index, now, evasive)
        if not outcome.accepted:
            if outcome.retry_at < self.config.duration:
                self._push(outcome.retry_at, ("announce-peer", peer, evasive))
            return
        peer.evasive_announce = evasive
        for entry in outcome.sample:
            peer.learn(entry.index)
        tactic = TACTIC_REANNOUNCE if evasive else TACTIC_INITIAL
        self._push(now + 0.2, ("connect", peer, tactic))
        if not evasive:
            next_announce = now + outcome.interval
            if next_announce < self.config.duration:
                self._push(next_announce, ("announce-peer", peer, False))

    def _announce_client(self, now: float, client: ClientPeer) -> None:
        outcome = self._tracker.announce("client", client.index, now)
        if outcome.accepted:
            config = self.config
            reverse_links = sum(1 for flag in client.dialed.values() if flag)
            for position, entry in enumerate(outcome.sample):
                if entry.index in client.dialed:
                    continue
                if reverse_links >= config.max_reverse_links:
                    break
                if client.rng.random() < config.reverse_connect_probability:
                    client.dialed[entry.index] = True
                    reverse_links += 1
                    peer = self._peers[entry.index]
                    self._push(
                        now + 0.3 * (position + 1),
                        ("reverse", client, peer, peer.evasive_announce),
                    )
            next_announce = (
                now + outcome.interval if outcome.accepted else now + 5.0
            )
        else:
            next_announce = outcome.retry_at
        if next_announce < self.config.duration:
            self._push(next_announce, ("announce-client", client))

    # Peer dialing.

    def _connect(self, now: float, peer: SwarmPeer, tactic: str) -> None:
        if now >= self.config.duration:
            return
        if len(peer.in_flight) + len(peer.links) >= self.config.max_targets:
            return
        targets = peer.candidate_targets()
        if not targets:
            return
        target = peer.rng.choice(targets)
        self._push(now, ("attempt", peer, self._clients[target], tactic, None))
        if len(targets) > 1:
            self._push(now + 2.0, ("connect", peer, tactic))

    def _launch_attempt(
        self,
        now: float,
        peer: SwarmPeer,
        client: ClientPeer,
        tactic: str,
        remote_port: Optional[int],
    ) -> None:
        if now >= self.config.duration:
            return
        if (client.index in peer.in_flight or client.index in peer.links
                or client.index in peer.abandoned):
            return
        peer.in_flight[client.index] = True
        self._attempt_id += 1
        rng = random.Random(
            derive_seed(
                derive_seed(self.config.seed, _D_ATTEMPT), self._attempt_id
            )
        )
        if remote_port is None:
            remote_port = peer.next_port()
        spec = ConnectionSpec(
            app=APP_BITTORRENT,
            start=now,
            protocol=IPPROTO_TCP,
            client_addr=client.addr,
            client_port=client.listen_port,
            remote_addr=peer.addr,
            remote_port=remote_port,
            initiator=Initiator.REMOTE,
            request_payload=bittorrent_handshake(rng),
            response_payload=bittorrent_handshake(rng),
            bytes_client_to_remote=rng.randint(200, 1200),
            bytes_remote_to_client=rng.randint(800, 3000),
            duration=rng.uniform(2.0, 4.0),
            rtt=out_in_delay(rng) * 0.5 + 0.01,
        )
        schedule = connection_packets(spec, rng)
        if not schedule:
            peer.in_flight.pop(client.index, None)
            return
        result = self._result
        result.attempts_total += 1
        result.tactic_attempts[tactic] = (
            result.tactic_attempts.get(tactic, 0) + 1
        )
        live = _Live(
            schedule, "attempt", self.config.admission_window,
            peer=peer, client=client, tactic=tactic,
        )
        self._push(schedule[0].timestamp, live)

    # Evasion tactics.

    def _hole_punch(self, now: float, peer: SwarmPeer, client: ClientPeer) -> None:
        """Tracker-coordinated rendezvous: the inside client probes
        outbound *from its listen port*, then the peer dials that port
        from a fresh (different) ephemeral port.  Under
        ``FieldMode.HOLE_PUNCHING`` the probe's mark omits the remote
        port, so the inbound SYN matches; under ``STRICT`` it cannot."""
        if now >= self.config.duration:
            return
        if (client.index in peer.in_flight or client.index in peer.links
                or client.index in peer.abandoned):
            return
        probe_port = peer.next_port()
        probe = Packet(
            now,
            SocketPair(
                IPPROTO_TCP, client.addr, client.listen_port,
                peer.addr, probe_port,
            ),
            size=_IP_TCP_HEADERS,
            flags=TCPFlags.SYN,
            direction=Direction.OUTBOUND,
        )
        verdict = self._pipeline.process(probe)
        if verdict is Verdict.PASS:
            self._window_bytes += probe.size
        self._result.hole_punch_probes += 1
        # NAT rewrites source ports: the inbound connect *must* come from
        # a different ephemeral port than the probe advertised.
        connect_port = peer.next_port()
        self._push(
            now + self.config.evasion.hole_punch_delay,
            ("attempt", peer, client, TACTIC_HOLE_PUNCH, connect_port),
        )

    def _pex_retry(self, now: float, peer: SwarmPeer, client: ClientPeer) -> None:
        """Gossip with a connected peer, learn fresh inside targets, and
        attempt one this peer never tried."""
        connected = [
            other for other in self._peers
            if other.index != peer.index and other.links
        ]
        if connected:
            neighbor = peer.rng.choice(connected)
            for index in neighbor.known_clients:
                peer.learn(index)
        targets = [
            index for index in peer.candidate_targets()
            if index not in peer.refusals
        ]
        if not targets:
            targets = peer.candidate_targets()
        if not targets:
            return
        target = peer.rng.choice(targets)
        self._push(now, ("attempt", peer, self._clients[target], TACTIC_PEX, None))

    def _churn(self, now: float, peer: SwarmPeer, client: ClientPeer) -> None:
        """Rotate the peer's own optimistic slot: try a *different* known
        inside member than the one that just refused."""
        targets = [
            index for index in peer.candidate_targets()
            if index != client.index
        ]
        if not targets:
            targets = peer.candidate_targets()
        if not targets:
            return
        target = peer.rng.choice(targets)
        self._push(
            now, ("attempt", peer, self._clients[target], TACTIC_CHURN, None)
        )

    # Reverse connections (client dials a tracker-advertised peer).

    def _launch_reverse(
        self, now: float, client: ClientPeer, peer: SwarmPeer, evasive: bool
    ) -> None:
        if now >= self.config.duration:
            return
        config = self.config
        self._attempt_id += 1
        rng = random.Random(
            derive_seed(derive_seed(config.seed, _D_ATTEMPT), self._attempt_id)
        )
        remaining = max(5.0, config.duration - now)
        span = min(rng.uniform(20.0, 60.0), remaining)
        spec = ConnectionSpec(
            app=APP_BITTORRENT,
            start=now,
            protocol=IPPROTO_TCP,
            client_addr=client.addr,
            client_port=client.host.ports.allocate(now),
            remote_addr=peer.addr,
            remote_port=peer.listen_port,
            initiator=Initiator.CLIENT,
            request_payload=bittorrent_handshake(rng),
            response_payload=bittorrent_handshake(rng),
            # Tit-for-tat: the leeching client still uploads pieces.
            bytes_client_to_remote=int(config.upload_rate * 0.5 * span),
            bytes_remote_to_client=int(config.upload_rate * 1.5 * span),
            duration=span,
            rtt=out_in_delay(rng) * 0.5 + 0.01,
        )
        schedule = connection_packets(spec, rng)
        if not schedule:
            return
        if evasive:
            self._result.tactic_attempts[TACTIC_REANNOUNCE] = (
                self._result.tactic_attempts.get(TACTIC_REANNOUNCE, 0) + 1
            )
        live = _Live(
            schedule, "reverse", config.admission_window,
            peer=peer, client=client, evasive=evasive,
        )
        self._push(schedule[0].timestamp, live)

    # Choker.

    def _rechoke(self, now: float, client: ClientPeer) -> None:
        for link in client.rechoke(now):
            self._push(now + 0.05, ("burst", link))
        next_tick = now + self.config.rechoke_interval
        if next_tick < self.config.duration:
            self._push(next_tick, ("rechoke", client))

    def _launch_burst(self, now: float, link: PeerLink) -> None:
        """One upload burst on an unchoked link, paced over the rechoke
        window; the next burst chains while the link stays unchoked."""
        if not link.unchoked or now >= self.config.duration:
            return
        config = self.config
        span = min(config.rechoke_interval, config.duration - now)
        total = int(config.upload_rate * span)
        if total <= 0:
            return
        rng = link.rng
        chunks = split_bytes(rng, total, config.burst_packet)
        pair = SocketPair(
            IPPROTO_TCP, link.client.addr, link.client_port,
            link.peer.addr, link.remote_port,
        )
        inverse = pair.inverse
        psh_ack = TCPFlags.PSH | TCPFlags.ACK
        ack = TCPFlags.ACK
        gap = span / (len(chunks) + 1)
        packets: List[Packet] = []
        for index, chunk in enumerate(chunks, start=1):
            when = now + index * gap * (1.0 + 0.1 * (rng.random() - 0.5))
            packets.append(Packet(
                when, pair, size=_IP_TCP_HEADERS + chunk,
                flags=psh_ack, direction=Direction.OUTBOUND,
            ))
            if index % 2 == 0:
                ack_delay = min(out_in_delay(rng), gap * 1.8, 1.0)
                packets.append(Packet(
                    when + ack_delay, inverse, size=_IP_TCP_HEADERS,
                    flags=ack, direction=Direction.INBOUND,
                ))
        packets.sort(key=lambda packet: packet.timestamp)
        live = _Live(packets, "burst", 0, peer=link.peer,
                     client=link.client, link=link)
        self._push(packets[0].timestamp, live)
        self._push(now + span, ("burst", link))

    def _disconnect(self, now: float, link: PeerLink) -> None:
        """Swarm churn: the peer drops an established inbound link and,
        unless it has given up on the client, redials shortly after —
        which is a *new* admission the filter's current ``P_d`` judges."""
        client, peer = link.client, link.peer
        link.unchoked = False
        client.links.pop(link.link_id, None)
        if peer.links.get(client.index) is link:
            del peer.links[client.index]
        redial_at = now + 1.0 + peer.rng.uniform(0.0, 2.0)
        if client.index not in peer.abandoned and redial_at < self.config.duration:
            self._push(redial_at, ("connect", peer, TACTIC_INITIAL))

    # Background mix.

    def _launch_background(self, now: float, spec: ConnectionSpec) -> None:
        self._attempt_id += 1
        rng = random.Random(
            derive_seed(
                derive_seed(self.config.seed, _D_ATTEMPT), self._attempt_id
            )
        )
        schedule = connection_packets(spec, rng)
        if not schedule:
            return
        self._result.background_total += 1
        live = _Live(
            schedule, "background", self.config.admission_window,
            tactic=spec.initiator.value,
        )
        self._push(schedule[0].timestamp, live)

    # Defense.

    def _retune_probe(self, now: float) -> None:
        retune = self.retune
        measured_bps = self._window_bytes * 8.0 / retune.interval
        self._window_bytes = 0
        retune.probe(now, measured_bps)
        next_probe = now + retune.interval
        if next_probe <= self.config.duration:
            self._push(next_probe, ("retune",))
