"""Evasion tactics a refused swarm peer may react with.

The paper evaluates the bitmap filter against replayed traces; real
BitTorrent peers *react* to refused connections.  The tactics modeled
here are the standard client behaviors (BUTorrent / TinyTorrent lineage,
plus the NAT-traversal folklore every modern client implements):

``reannounce``
    Go back to the tracker early.  Besides learning fresh targets, the
    re-announce puts the peer back at the front of the tracker's recent
    list — an *inside* client's next announce may then dial the peer
    outbound, and upload on a client-initiated connection sails past
    inbound admission entirely (the locality-paper dynamic).

``port_hop``
    Retry from a fresh ephemeral source port.  Against an exact-σ
    blocklist this evades suppression outright; against the bitmap it is
    a fresh penetration trial (new hash indices, new ``P_d`` coin).

``churn``
    Optimistic-unchoke churn: rotate the peer's own optimistic slot to a
    *different* inside member already known, instead of hammering the
    refusing one.

``pex``
    Peer-exchange retry: gossip with a swarm peer that *does* hold an
    established connection, learn inside members this peer has never
    tried, and attempt one of those.

``hole_punch``
    Rendezvous through the tracker: the inside client emits an outbound
    probe from its listen port toward the peer, then the peer connects
    inbound to that listen port from a *different* ephemeral port.  The
    probe opens the door only under
    :attr:`repro.core.bitmap_filter.FieldMode.HOLE_PUNCHING`, whose hash
    omits the remote port; under ``STRICT`` the ports mismatch and the
    punch fails — exactly the asymmetry the paper's section 4 discusses.

Tactic order is fixed (:data:`TACTIC_CYCLE`): a refused target chain
cycles through the enabled tactics deterministically, so every enabled
tactic gets exercised and runs stay bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

#: Tactic labels as they appear in per-tactic attempt/success counts.
TACTIC_INITIAL = "initial"
TACTIC_REANNOUNCE = "reannounce"
TACTIC_PORT_HOP = "port-hop"
TACTIC_CHURN = "churn"
TACTIC_PEX = "pex"
TACTIC_HOLE_PUNCH = "hole-punch"

#: The deterministic reaction order for a refused target chain.
TACTIC_CYCLE = (
    TACTIC_PORT_HOP,
    TACTIC_REANNOUNCE,
    TACTIC_HOLE_PUNCH,
    TACTIC_PEX,
    TACTIC_CHURN,
)

#: Every label a SwarmResult tactic table may carry.
ALL_TACTICS = (TACTIC_INITIAL,) + TACTIC_CYCLE


@dataclass
class EvasionPolicy:
    """Which reactions a refused admission triggers, and how eagerly."""

    reannounce: bool = True
    port_hop: bool = True
    churn: bool = True
    pex: bool = True
    hole_punch: bool = True
    #: Seconds before the first reaction to a refusal.
    retry_backoff: float = 2.0
    #: Backoff multiplier per successive refusal of the same target chain.
    backoff_factor: float = 1.5
    #: Reactions per (peer, target) chain before the peer gives up on it.
    max_attempts: int = 5
    #: Outbound rendezvous probe → inbound connect delay (hole punching).
    hole_punch_delay: float = 0.5

    def __post_init__(self) -> None:
        if self.retry_backoff <= 0:
            raise ValueError(f"retry_backoff must be positive: {self.retry_backoff}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1: {self.backoff_factor}")
        if self.max_attempts < 0:
            raise ValueError(f"max_attempts must be >= 0: {self.max_attempts}")
        if self.hole_punch_delay <= 0:
            raise ValueError(
                f"hole_punch_delay must be positive: {self.hole_punch_delay}"
            )

    @classmethod
    def off(cls) -> "EvasionPolicy":
        """Peers that never react — the evasion-off baseline."""
        return cls(
            reannounce=False, port_hop=False, churn=False, pex=False,
            hole_punch=False, max_attempts=0,
        )

    @property
    def any_enabled(self) -> bool:
        return bool(self.enabled_tactics())

    def enabled_tactics(self) -> List[str]:
        """Enabled tactic labels in :data:`TACTIC_CYCLE` order."""
        flags = {
            TACTIC_PORT_HOP: self.port_hop,
            TACTIC_REANNOUNCE: self.reannounce,
            TACTIC_HOLE_PUNCH: self.hole_punch,
            TACTIC_PEX: self.pex,
            TACTIC_CHURN: self.churn,
        }
        return [tactic for tactic in TACTIC_CYCLE if flags[tactic]]

    def tactic_for(self, attempt_number: int) -> str:
        """The reaction to refusal number ``attempt_number`` (0-based) of
        one target chain — cycles through the enabled tactics."""
        enabled = self.enabled_tactics()
        if not enabled:
            raise ValueError("no evasion tactics enabled")
        return enabled[attempt_number % len(enabled)]

    def backoff_for(self, attempt_number: int) -> float:
        """Seconds to wait before reaction ``attempt_number`` (0-based)."""
        return self.retry_backoff * (self.backoff_factor ** attempt_number)

    def as_dict(self) -> dict:
        return {
            "reannounce": self.reannounce,
            "port_hop": self.port_hop,
            "churn": self.churn,
            "pex": self.pex,
            "hole_punch": self.hole_punch,
            "retry_backoff": self.retry_backoff,
            "backoff_factor": self.backoff_factor,
            "max_attempts": self.max_attempts,
            "hole_punch_delay": self.hole_punch_delay,
        }
