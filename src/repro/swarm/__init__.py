"""Adversarial closed-loop swarm plane.

P2P peers that *react* to the filter's refusals — tracker re-announce,
source-port hopping, optimistic-unchoke churn, PEX retries, NAT
hole-punching — and the retune loop that claws the upload bound back.
See :mod:`repro.swarm.engine` for the event loop, docs/architecture.md
for the plane-level picture.
"""

from repro.swarm.engine import SwarmConfig, SwarmResult, SwarmSimulator
from repro.swarm.evasion import (
    ALL_TACTICS,
    EvasionPolicy,
    TACTIC_CHURN,
    TACTIC_CYCLE,
    TACTIC_HOLE_PUNCH,
    TACTIC_INITIAL,
    TACTIC_PEX,
    TACTIC_PORT_HOP,
    TACTIC_REANNOUNCE,
)
from repro.swarm.peers import ClientPeer, PeerLink, RateMeasure, SwarmPeer
from repro.swarm.retune import (
    ControlApplier,
    ControlServiceHandle,
    DirectApplier,
    RetuneLoop,
    launch_control_service,
)
from repro.swarm.tracker import AnnounceResult, Tracker, TrackerEntry

__all__ = [
    "ALL_TACTICS",
    "AnnounceResult",
    "ClientPeer",
    "ControlApplier",
    "ControlServiceHandle",
    "DirectApplier",
    "EvasionPolicy",
    "PeerLink",
    "RateMeasure",
    "RetuneLoop",
    "SwarmConfig",
    "SwarmPeer",
    "SwarmResult",
    "SwarmSimulator",
    "TACTIC_CHURN",
    "TACTIC_CYCLE",
    "TACTIC_HOLE_PUNCH",
    "TACTIC_INITIAL",
    "TACTIC_PEX",
    "TACTIC_PORT_HOP",
    "TACTIC_REANNOUNCE",
    "Tracker",
    "TrackerEntry",
    "launch_control_service",
]
