"""Swarm participants: inside clients with choker state, outside peers.

The per-peer rate measurement and the choke/unchoke machinery follow the
BUTorrent ``Upload``/``Measure`` loop (see SNIPPETS.md): every inside
client serves at most ``unchoke_slots`` peers, ranks interested peers by
their recently measured transfer rate on each rechoke tick, and rotates
one *optimistic* unchoke slot on a slower timer so idle peers get a
chance to prove themselves.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.workload.topology import HostModel


class RateMeasure:
    """Sliding-origin rate estimator (BUTorrent's ``Measure``).

    ``update`` adds transferred bytes at trace time ``now``; ``rate``
    reports bytes/second over at most the last ``max_rate_period``
    seconds.  The origin slides forward so an idle link's measured rate
    decays toward zero instead of averaging over its whole lifetime.
    """

    def __init__(self, max_rate_period: float = 20.0) -> None:
        if max_rate_period <= 0:
            raise ValueError(f"max_rate_period must be positive: {max_rate_period}")
        self.max_rate_period = max_rate_period
        self.rate_since: Optional[float] = None
        self.last = 0.0
        self.total = 0.0
        self._rate = 0.0

    def update(self, now: float, amount: int) -> None:
        if self.rate_since is None:
            self.rate_since = now - 0.001
        self.total += amount
        elapsed = max(now - self.rate_since, 0.001)
        self._rate = self.total / elapsed
        self.last = now
        # Slide the origin so old transfers age out of the estimate.
        if now - self.rate_since > self.max_rate_period:
            excess = (now - self.max_rate_period) - self.rate_since
            self.total = max(0.0, self.total - self._rate * excess)
            self.rate_since = now - self.max_rate_period

    def rate(self, now: float) -> float:
        if self.rate_since is None:
            return 0.0
        elapsed = max(now - self.rate_since, 0.001)
        return self.total / elapsed


class PeerLink:
    """One established connection between an inside client and a peer."""

    __slots__ = (
        "link_id", "client", "peer", "tactic", "established_at",
        "unchoked", "measure", "rng", "outbound", "client_port", "remote_port",
    )

    def __init__(
        self,
        link_id: int,
        client: "ClientPeer",
        peer: "SwarmPeer",
        tactic: str,
        now: float,
        rng: random.Random,
        outbound: bool = False,
        client_port: int = 0,
        remote_port: int = 0,
    ) -> None:
        self.link_id = link_id
        self.client = client
        self.peer = peer
        self.tactic = tactic
        self.established_at = now
        self.unchoked = False
        #: Measured upload rate client → peer on this link.
        self.measure = RateMeasure()
        #: Burst pacing RNG — derived per link by the engine.
        self.rng = rng
        #: True when the *client* initiated (reverse connection) — upload
        #: then rides an outbound-initiated connection.
        self.outbound = outbound
        self.client_port = client_port
        self.remote_port = remote_port


class ClientPeer:
    """An inside host running a BitTorrent-style client.

    Holds the choker state: which established links are interested, which
    are unchoked, and which one holds the optimistic slot.
    """

    def __init__(
        self,
        index: int,
        host: HostModel,
        listen_port: int,
        rng: random.Random,
        unchoke_slots: int = 4,
        optimistic_rounds: int = 3,
    ) -> None:
        if unchoke_slots < 1:
            raise ValueError(f"unchoke_slots must be >= 1: {unchoke_slots}")
        if optimistic_rounds < 1:
            raise ValueError(f"optimistic_rounds must be >= 1: {optimistic_rounds}")
        self.index = index
        self.host = host
        self.addr = host.addr
        self.listen_port = listen_port
        self.rng = rng
        self.unchoke_slots = unchoke_slots
        self.optimistic_rounds = optimistic_rounds
        #: Established links by link id, insertion-ordered (deterministic).
        self.links: Dict[int, PeerLink] = {}
        self.optimistic: Optional[PeerLink] = None
        self.rechoke_round = 0
        #: Peers this client already dialed outbound (reverse connects).
        self.dialed: Dict[int, bool] = {}

    @property
    def interested(self) -> List[PeerLink]:
        return list(self.links.values())

    def free_slots(self) -> int:
        used = sum(1 for link in self.links.values() if link.unchoked)
        return max(0, self.unchoke_slots - used)

    def add_link(self, link: PeerLink) -> None:
        self.links[link.link_id] = link

    def rechoke(self, now: float) -> List[PeerLink]:
        """One choker tick (BUTorrent: every ~10 s): unchoke the fastest
        ``slots - 1`` interested links plus one optimistic pick, rotated
        every ``optimistic_rounds`` ticks.  Returns links that became
        *newly* unchoked (the engine schedules their upload bursts)."""
        self.rechoke_round += 1
        links = self.interested
        if not links:
            self.optimistic = None
            return []
        ranked = sorted(
            links,
            key=lambda link: (-link.measure.rate(now), link.link_id),
        )
        regular = ranked[: max(0, self.unchoke_slots - 1)]
        rotate = (
            self.optimistic is None
            or self.optimistic.link_id not in self.links
            or self.rechoke_round % self.optimistic_rounds == 0
        )
        if rotate:
            choked = [link for link in ranked if link not in regular]
            self.optimistic = self.rng.choice(choked) if choked else None
        unchoked = list(regular)
        if self.optimistic is not None and self.optimistic not in unchoked:
            unchoked.append(self.optimistic)
        newly = []
        chosen = {link.link_id for link in unchoked}
        for link in links:
            was = link.unchoked
            link.unchoked = link.link_id in chosen
            if link.unchoked and not was:
                newly.append(link)
        return newly


class SwarmPeer:
    """An outside swarm member that wants the inside clients' upload."""

    def __init__(
        self,
        index: int,
        addr: int,
        listen_port: int,
        rng: random.Random,
    ) -> None:
        self.index = index
        self.addr = addr
        self.listen_port = listen_port
        self.rng = rng
        #: Fresh ephemeral source ports — each connection attempt (and
        #: every port hop) draws a new one.
        self._port_base = rng.randint(1024, 20000)
        self._port_count = 0
        #: Inside clients learned from the tracker / PEX, by client index.
        self.known_clients: Dict[int, bool] = {}
        #: Per-target evasion chains: client index → refusal count.
        self.refusals: Dict[int, int] = {}
        #: Targets with an attempt currently in flight (no double-dialing).
        self.in_flight: Dict[int, bool] = {}
        #: Established links by client index (inbound or reverse).
        self.links: Dict[int, PeerLink] = {}
        #: Targets this peer has abandoned (evasion chain exhausted).
        self.abandoned: Dict[int, bool] = {}
        #: Sticky: some inbound attempt established at least once, even
        #: if the link churned away later.
        self.was_penetrated = False
        #: Download rate achieved across all links (the peer's payoff).
        self.measure = RateMeasure()
        #: True while the peer's latest tracker announce was an evasive
        #: re-announce (credits the reannounce tactic on reverse connects).
        self.evasive_announce = False
        #: Tracker-imposed earliest next announce (back-off state lives
        #: in the tracker; this caches the last advisory).
        self.next_announce = 0.0

    def next_port(self) -> int:
        """A fresh ephemeral source port (port hops never repeat one)."""
        port = 1024 + (self._port_base - 1024 + self._port_count) % 60000
        self._port_count += 1
        return port

    def learn(self, client_index: int) -> bool:
        """Record an inside client as a known target; True if new."""
        if client_index in self.known_clients:
            return False
        self.known_clients[client_index] = True
        return True

    def candidate_targets(self) -> List[int]:
        """Known clients with no live link, not in flight, not abandoned,
        in deterministic learned order."""
        return [
            index
            for index in self.known_clients
            if index not in self.links
            and index not in self.in_flight
            and index not in self.abandoned
        ]

    @property
    def penetrated(self) -> bool:
        """Did any *inbound* attempt of this peer ever establish?"""
        return self.was_penetrated or any(
            not link.outbound for link in self.links.values()
        )
