"""The fleet supervisor: shard daemons under one lifecycle.

:class:`FleetSupervisor` spawns one :class:`~repro.fleet.daemon.ShardDaemon`
per lane of a :class:`~repro.shard.plan.ShardPlan`, partitions each
incoming chunk with the plan, and streams every lane's sub-chunks to its
daemon as binary frames.  Transit traffic matching no shard runs
in-process through the same
:class:`~repro.shard.lifecycle.DefaultLaneFilter` the offline parallel
backend uses (lane -1).

Exactness across failures rests on three pieces that already hold
individually:

* every lane chunk ever sent is **retained**, so a restarted daemon can
  be replayed its whole epoch from frame zero;
* a warm restart (``--restore``) fast-forwards the daemon's socket
  source over ``chunks_done`` frames — decoding them first, keeping the
  interned pool in lockstep — so the resent stream resumes exactly where
  the snapshot left off (a cold restart simply reprocesses everything);
* the fleet verdict is lane-decomposed: per-shard verdict fingerprints
  combine through the order-independent
  :func:`~repro.shard.lifecycle.combine_lane_fingerprints`, and the
  merged blocklist is the union of per-shard stores (lanes own disjoint
  connections) compacted at the fleet's trace end.

The offline reference for all of it is
:func:`offline_reference` — ``parallel_replay(workers=1,
record_fingerprint=True)`` over an equivalently-built sharded filter —
and the fleet smoke holds the two bit-identical through crash-kills and
rolling restarts.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.filters.base import Verdict
from repro.filters.blocklist import BlockedConnectionStore
from repro.fleet.daemon import FleetError, ShardDaemon
from repro.fleet.spec import ShardFilterSpec
from repro.net.packet import SocketPair
from repro.net.table import PacketTable
from repro.service.control import ControlError
from repro.service.state import read_snapshot
from repro.shard.lifecycle import (
    DefaultLaneFilter,
    ShardLifecycle,
    combine_lane_fingerprints,
)
from repro.shard.plan import ShardPlan

MANIFEST_NAME = "fleet.json"


@dataclass
class FleetResult:
    """The fleet's merged outcome after :meth:`FleetSupervisor.drain`."""

    packets: int = 0
    inbound_packets: int = 0
    inbound_dropped: int = 0
    #: Lane-keyed fingerprint combination (lane -1 = default lane);
    #: equals the offline ``parallel_replay`` reference's fingerprint.
    fingerprint: int = 0
    lane_fingerprints: Dict[int, int] = field(default_factory=dict)
    #: Union of per-shard blocked-σ stores, compacted at the fleet's
    #: trace end; ``None`` when the fleet runs without blocklists.
    blocked: Optional[Dict[SocketPair, float]] = None
    suppressed_packets: int = 0
    suppressed_bytes: int = 0
    per_shard: Dict[str, dict] = field(default_factory=dict)
    restarts: int = 0
    chunks_fed: int = 0

    @property
    def inbound_drop_rate(self) -> float:
        if not self.inbound_packets:
            return 0.0
        return self.inbound_dropped / self.inbound_packets


class FleetSupervisor(ShardLifecycle):
    """N shard daemons, one plan, one lifecycle.

    ``snapshot_every`` checkpoints every shard after that many fed
    chunks (between-chunk snapshots, so each is consistent) — the warm
    base a crashed shard restarts from.  ``0`` disables checkpointing;
    crashed shards then restart cold and reprocess their whole epoch,
    which is slower but equally exact.
    """

    def __init__(
        self,
        plan: ShardPlan,
        workdir: str,
        spec: Optional[ShardFilterSpec] = None,
        default_verdict: Verdict = Verdict.PASS,
        snapshot_every: int = 8,
        boot_timeout: float = ShardDaemon.BOOT_TIMEOUT,
    ) -> None:
        if snapshot_every < 0:
            raise ValueError(f"snapshot_every must be >= 0: {snapshot_every}")
        self.plan = plan
        self.workdir = workdir
        self.spec = spec if spec is not None else ShardFilterSpec()
        self.default_verdict = default_verdict
        self.snapshot_every = snapshot_every
        os.makedirs(workdir, exist_ok=True)
        serve_args = self.spec.serve_args()
        self.daemons: List[ShardDaemon] = [
            ShardDaemon(lane, plan.label(lane), workdir, serve_args,
                        boot_timeout=boot_timeout)
            for lane in range(plan.lanes)
        ]
        self._retained: List[List[PacketTable]] = [[] for _ in self.daemons]
        self._default_chunks: List[PacketTable] = []
        self.chunks_fed = 0
        self._last_ts: Optional[float] = None

    # -- lifecycle ------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.workdir, MANIFEST_NAME)

    def launch(self) -> None:
        """Boot every shard daemon and publish the fleet manifest."""
        try:
            for daemon in self.daemons:
                daemon.launch()
        except FleetError:
            self.stop()
            raise
        self._write_manifest()

    def ping(self) -> dict:
        """Fleet-wide liveness: every shard's ping plus fleet counters."""
        return {
            "shards": [daemon.ping() for daemon in self.daemons],
            "chunks_fed": self.chunks_fed,
            "restarts": self.restarts,
        }

    def stop(self) -> None:
        for daemon in self.daemons:
            daemon.stop()

    @property
    def restarts(self) -> int:
        return sum(daemon.restarts for daemon in self.daemons)

    def _write_manifest(self) -> None:
        manifest = {
            "version": 1,
            "plan": self.plan.as_spec(),
            "filter": self.spec.as_spec(),
            "default_verdict": self.default_verdict.name,
            "shards": [
                {
                    "lane": daemon.lane,
                    "label": daemon.label,
                    "feed": daemon.feed_address,
                    "control": daemon.control_address,
                    "snapshot_dir": daemon.snapshot_dir,
                    "log": daemon.log_path,
                    "pid": daemon.process.pid if daemon.process else None,
                    "restarts": daemon.restarts,
                }
                for daemon in self.daemons
            ],
        }
        path = self.manifest_path
        staging = path + ".tmp"
        with open(staging, "w") as handle:
            json.dump(manifest, handle, indent=2)
        os.replace(staging, path)

    # -- the pump -------------------------------------------------------

    def feed(self, chunks) -> None:
        for chunk in chunks:
            self.feed_chunk(chunk)

    def feed_chunk(self, chunk: PacketTable) -> None:
        """Partition one chunk by the plan and fan the lanes out."""
        if len(chunk):
            self._last_ts = chunk.timestamps[len(chunk) - 1]
        lanes, default_lane = self.plan.partition_table(chunk)
        for lane, lane_chunk in enumerate(lanes):
            if not len(lane_chunk):
                continue
            self._retained[lane].append(lane_chunk)
            self._send(lane)
        if len(default_lane):
            self._default_chunks.append(default_lane)
        self.chunks_fed += 1
        if self.snapshot_every and self.chunks_fed % self.snapshot_every == 0:
            self.checkpoint()

    def _send(self, lane: int) -> None:
        """Send the lane's newest retained chunk, recovering the daemon
        (restart + full resend) on a dead process or a broken feed."""
        daemon = self.daemons[lane]
        if not daemon.alive:
            self._recover(lane)
            return  # the resend already covered the newest chunk
        try:
            daemon.send(self._retained[lane][-1])
        except (BrokenPipeError, ConnectionResetError, OSError):
            self._recover(lane)

    def _recover(self, lane: int) -> None:
        """Crash recovery: respawn (warm when a snapshot exists) and
        resend the shard's entire retained epoch — the daemon's restored
        ``skip`` discards the already-processed prefix exactly."""
        daemon = self.daemons[lane]
        daemon.restart()
        try:
            for chunk in self._retained[lane]:
                daemon.send(chunk)
        except (BrokenPipeError, ConnectionResetError, OSError) as error:
            raise FleetError(
                f"shard {daemon.label} died again during resend: {error}"
            ) from error
        self._write_manifest()

    def checkpoint(self) -> Dict[str, str]:
        """Snapshot every live shard between chunks; returns the paths."""
        paths: Dict[str, str] = {}
        for daemon in self.daemons:
            if not daemon.alive:
                continue
            try:
                with daemon.client() as client:
                    paths[daemon.label] = client.snapshot()
            except (ControlError, OSError):
                continue  # the next checkpoint (or cold resend) covers it
        return paths

    # -- fan-out control ------------------------------------------------

    def broadcast(self, cmd: str, **params) -> Dict[str, dict]:
        """One control request to every shard; responses keyed by label.

        A shard that cannot answer reports ``{"ok": False, "error": ...}``
        instead of failing the whole fan-out."""
        responses: Dict[str, dict] = {}
        for daemon in self.daemons:
            try:
                with daemon.client() as client:
                    responses[daemon.label] = client.request(cmd, **params)
            except (ControlError, OSError) as error:
                responses[daemon.label] = {"ok": False, "error": str(error)}
        return responses

    def configure(self, **params) -> Dict[str, dict]:
        """Fan out a live reconfiguration (RED thresholds, Δt, ...)."""
        responses = self.broadcast("config", **params)
        return {
            label: response.get("applied", response)
            for label, response in responses.items()
        }

    def stats(self) -> dict:
        """Aggregated fleet telemetry: per-shard stats documents plus
        fleet totals (counter sums and the combined lane fingerprint —
        shard lanes only; the in-process default lane finalizes at
        :meth:`drain`)."""
        shards: Dict[str, dict] = {}
        fingerprints: Dict[int, int] = {}
        totals = {"packets": 0, "inbound_packets": 0, "inbound_dropped": 0,
                  "blocklist_entries": 0}
        for daemon in self.daemons:
            try:
                with daemon.client() as client:
                    stats = client.stats()
            except (ControlError, OSError) as error:
                shards[daemon.label] = {"error": str(error)}
                continue
            shards[daemon.label] = stats
            totals["packets"] += stats.get("packets", 0)
            totals["inbound_packets"] += stats.get("inbound_packets", 0)
            totals["inbound_dropped"] += stats.get("inbound_dropped", 0)
            if stats.get("blocklist"):
                totals["blocklist_entries"] += stats["blocklist"]["entries"]
            if stats.get("fingerprint") is not None:
                fingerprints[daemon.lane] = stats["fingerprint"]
        totals["fingerprint"] = combine_lane_fingerprints(fingerprints)
        return {"shards": shards, "totals": totals,
                "chunks_fed": self.chunks_fed, "restarts": self.restarts}

    # -- restarts -------------------------------------------------------

    def rolling_restart(self) -> None:
        """Restart every shard in turn, warm from a fresh snapshot, with
        the rest of the fleet untouched — the fleet as a whole never
        stops serving.  Per shard: snapshot (between chunks, so it is
        consistent), shutdown (queued frames are discarded — the resend
        re-covers them), respawn with ``--restore``, resend the epoch."""
        for lane, daemon in enumerate(self.daemons):
            if not daemon.alive:
                self._recover(lane)
                continue
            try:
                with daemon.client() as client:
                    client.snapshot()
                    client.shutdown(timeout=None)
            except (ControlError, OSError):
                pass  # a shard dying mid-restart is just the crash path
            daemon.wait(timeout=30)
            daemon.relaunch(restore=daemon.has_snapshot())
            try:
                for chunk in self._retained[lane]:
                    daemon.send(chunk)
            except (BrokenPipeError, ConnectionResetError, OSError) as error:
                raise FleetError(
                    f"shard {daemon.label} died during rolling restart: "
                    f"{error}"
                ) from error
        self._write_manifest()

    # -- drain ----------------------------------------------------------

    def flush(self, timeout: float = 120.0) -> None:
        """Block until every shard has processed every frame sent to it
        (recovering shards that died since the last send)."""
        deadline = time.monotonic() + timeout
        for lane, daemon in enumerate(self.daemons):
            while True:
                if not daemon.alive:
                    self._recover(lane)
                try:
                    with daemon.client() as client:
                        health = client.health()
                except (ControlError, OSError):
                    health = None
                if (health is not None
                        and health.get("chunks_done", 0) >= daemon.frames_sent):
                    break
                if time.monotonic() >= deadline:
                    raise FleetError(
                        f"shard {daemon.label} did not flush within "
                        f"{timeout:.0f}s ({health})"
                    )
                time.sleep(0.05)

    def drain(self, timeout: float = 120.0) -> FleetResult:
        """Finalize the fleet and merge the verdict.

        Flushes every shard, takes one final consistent snapshot each
        (the blocked-σ rows live there, not in the stats document),
        drains the daemons for their summaries, replays the retained
        default-lane traffic in-process, and folds everything into one
        :class:`FleetResult` whose fingerprint and blocklist match the
        offline partitioned replay bit for bit.
        """
        self.flush(timeout=timeout)

        result = FleetResult(chunks_fed=self.chunks_fed)
        fingerprints: Dict[int, int] = {}
        use_blocklist = self.spec.use_blocklist
        merged_blocked: Dict[SocketPair, float] = {}

        for daemon in self.daemons:
            snapshot_doc = None
            try:
                with daemon.client() as client:
                    path = client.snapshot()
                    snapshot_doc = read_snapshot(path)
                    summary = client.drain(timeout=None)
            except (ControlError, OSError) as error:
                raise FleetError(
                    f"shard {daemon.label} failed to drain: {error}"
                ) from error
            daemon.wait(timeout=30)
            result.per_shard[daemon.label] = summary
            result.packets += summary.get("packets", 0)
            result.inbound_packets += summary.get("inbound_packets", 0)
            result.inbound_dropped += summary.get("inbound_dropped", 0)
            if summary.get("fingerprint") is not None:
                fingerprints[daemon.lane] = summary["fingerprint"]
            blocklist_doc = snapshot_doc["router"].get("blocklist")
            if use_blocklist and blocklist_doc is not None:
                store = BlockedConnectionStore.restore(blocklist_doc)
                merged_blocked.update(store._blocked)
                result.suppressed_packets += store.suppressed_packets
                result.suppressed_bytes += store.suppressed_bytes
            daemon.stop()

        if self._default_chunks:
            default = self._replay_default_lane()
            result.packets += default.packets
            result.inbound_packets += default.inbound_packets
            result.inbound_dropped += default.inbound_dropped
            if default.fingerprint is not None:
                fingerprints[-1] = default.fingerprint
            blocklist = default.router.blocklist
            if use_blocklist and blocklist is not None:
                merged_blocked.update(blocklist._blocked)
                result.suppressed_packets += blocklist.suppressed_packets
                result.suppressed_bytes += blocklist.suppressed_bytes

        if use_blocklist:
            # The offline merge compacts at the trace's end; matching it
            # here makes the merged table contents deterministic too.
            store = BlockedConnectionStore()
            store._blocked = merged_blocked
            if self._last_ts is not None:
                store.compact(self._last_ts)
            result.blocked = store._blocked

        result.lane_fingerprints = fingerprints
        result.fingerprint = combine_lane_fingerprints(fingerprints)
        result.restarts = self.restarts
        return result

    def _replay_default_lane(self):
        """The transit (default) lane, replayed in-process exactly as the
        offline parallel backend runs it."""
        from repro.net.table import as_table
        from repro.sim.replay import replay

        return replay(
            as_table(self._default_chunks),
            DefaultLaneFilter(self.default_verdict),
            use_blocklist=self.spec.use_blocklist,
            batched=True,
            record_fingerprint=True,
        )


def offline_reference(
    packets,
    plan: ShardPlan,
    spec: ShardFilterSpec,
    default_verdict: Verdict = Verdict.PASS,
):
    """The fleet's equivalence baseline: a single-process partitioned
    replay over an identically-built sharded filter, with per-lane
    fingerprints.  ``result.fingerprint`` and
    ``result.router.blocklist`` are what :meth:`FleetSupervisor.drain`
    must reproduce bit-identically."""
    from repro.filters.sharded import ShardedFilter
    from repro.sim.parallel import parallel_replay

    members = [spec.build_filter() for _ in range(plan.lanes)]
    sharded = ShardedFilter.from_plan(
        plan, members, default_verdict=default_verdict
    )
    return parallel_replay(
        packets,
        sharded,
        workers=1,
        use_blocklist=spec.use_blocklist,
        record_fingerprint=True,
    )
