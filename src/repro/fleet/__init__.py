"""Fleet plane: a supervision layer over shard daemons.

One :class:`FleetSupervisor` owns N :class:`~repro.fleet.daemon.ShardDaemon`
subprocesses — each a full ``repro serve`` filter service listening on a
unix feed socket and a unix control socket — plus the shard plan that
partitions the packet stream between them.  The supervisor is itself a
:class:`~repro.shard.lifecycle.ShardLifecycle`, so the whole fleet
launches, pings and stops through the same contract as a single lane.

The fleet reproduces the offline partitioned replay exactly: per-lane
verdict fingerprints combine through
:func:`~repro.shard.lifecycle.combine_lane_fingerprints` into the same
value ``parallel_replay(..., workers=1, record_fingerprint=True)``
computes, and the merged blocklist is the union of the per-shard stores
compacted at the fleet's trace end — bit-identical even across shard
crashes, restarts-from-snapshot, and rolling restarts.
"""

from repro.fleet.daemon import FleetError, ShardDaemon
from repro.fleet.spec import ShardFilterSpec
from repro.fleet.supervisor import FleetResult, FleetSupervisor, offline_reference

__all__ = [
    "FleetError",
    "FleetResult",
    "FleetSupervisor",
    "ShardDaemon",
    "ShardFilterSpec",
    "offline_reference",
]
