"""The shard filter specification a fleet deploys.

A fleet's daemons build their filters from CLI arguments (each shard is
a ``repro serve`` subprocess), while the offline reference builds the
same filters in-process.  :class:`ShardFilterSpec` is the single source
for both sides: :meth:`serve_args` renders the daemon's argv tail and
:meth:`build_filter` constructs the equivalent
:class:`~repro.filters.bitmap.BitmapPacketFilter` — the two must stay
mirror images of ``repro.cli._build_serve_filter``, which is what makes
the fleet-vs-offline fingerprint comparison meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.bitmap_filter import BitmapFilterConfig, FieldMode


@dataclass
class ShardFilterSpec:
    """One shard's filter configuration (every shard gets a copy)."""

    size_bits: int = 20
    vectors: int = 4
    hashes: int = 3
    rotate_interval: float = 5.0
    hole_punching: bool = False
    low_mbps: Optional[float] = None
    high_mbps: Optional[float] = None
    use_blocklist: bool = True

    def serve_args(self) -> List[str]:
        """The ``repro serve`` argv tail that builds this filter."""
        args = [
            "--size-bits", str(self.size_bits),
            "--vectors", str(self.vectors),
            "--hashes", str(self.hashes),
            "--rotate", str(self.rotate_interval),
        ]
        if self.hole_punching:
            args.append("--hole-punching")
        if self.low_mbps is not None and self.high_mbps is not None:
            args += ["--low-mbps", str(self.low_mbps),
                     "--high-mbps", str(self.high_mbps)]
        if not self.use_blocklist:
            args.append("--no-blocklist")
        return args

    def build_filter(self):
        """The in-process equivalent of the daemon's filter (same config,
        same deterministic RNG seed, same drop controller)."""
        from repro.filters.bitmap import BitmapPacketFilter
        from repro.filters.policy import DropController

        if self.low_mbps is not None and self.high_mbps is not None:
            controller = DropController.red_mbps(
                low_mbps=self.low_mbps, high_mbps=self.high_mbps
            )
        else:
            controller = DropController.always_drop()
        config = BitmapFilterConfig(
            size=2 ** self.size_bits,
            vectors=self.vectors,
            hashes=self.hashes,
            rotate_interval=self.rotate_interval,
            field_mode=(FieldMode.HOLE_PUNCHING if self.hole_punching
                        else FieldMode.STRICT),
        )
        return BitmapPacketFilter(config, drop_controller=controller)

    def as_spec(self) -> dict:
        """JSON-safe form for the fleet manifest."""
        return {
            "size_bits": self.size_bits,
            "vectors": self.vectors,
            "hashes": self.hashes,
            "rotate_interval": self.rotate_interval,
            "hole_punching": self.hole_punching,
            "low_mbps": self.low_mbps,
            "high_mbps": self.high_mbps,
            "use_blocklist": self.use_blocklist,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "ShardFilterSpec":
        return cls(**spec)
