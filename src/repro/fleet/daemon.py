"""The shard-daemon handle: one supervised ``repro serve`` subprocess.

A :class:`ShardDaemon` is the third in-tree
:class:`~repro.shard.lifecycle.ShardLifecycle` implementation (after the
in-process :class:`~repro.shard.lifecycle.MemberLane` and the
multiprocess :class:`~repro.shard.lifecycle.WorkerPool`): ``launch``
spawns a full :class:`~repro.service.service.FilterService` as a child
process listening on a unix *feed* socket (binary columnar frames,
:mod:`repro.net.stream`) and a unix *control* socket (JSON lines,
:mod:`repro.service.control`), with its own snapshot directory.

The handle owns the feed connection (a stateful
:class:`~repro.net.stream.FrameWriter`, so frames carry pool deltas) and
talks to the daemon through short-lived
:class:`~repro.service.control.ControlClient` connections.  Restart
semantics are exact: :meth:`relaunch` respawns the process — warm from
the latest snapshot when one exists — and the supervisor resends the
shard's entire retained frame stream; the restored service's
``source.skip(chunks_done)`` discards the already-processed prefix
(decoding it first, so the receiver's interned pool stays in lockstep
with the resent delta frames), and processing resumes frame-exact.
"""

from __future__ import annotations

import os
import socket as socket_module
import subprocess
import sys
import time
from typing import IO, List, Optional

from repro.net.stream import FrameWriter
from repro.net.table import PacketTable
from repro.service.control import ControlClient, ControlError
from repro.service.state import latest_snapshot
from repro.shard.lifecycle import ShardLifecycle


class FleetError(RuntimeError):
    """A shard daemon failed to boot, respond, or recover."""


def _log_tail(path: str, lines: int = 12) -> str:
    try:
        with open(path, "r", errors="replace") as handle:
            return "".join(handle.readlines()[-lines:])
    except OSError:
        return "<no log>"


class ShardDaemon(ShardLifecycle):
    """Lifecycle handle for one shard's filter-service subprocess."""

    #: How long ``launch`` waits for the child's control socket.
    BOOT_TIMEOUT = 20.0

    def __init__(
        self,
        lane: int,
        label: str,
        workdir: str,
        serve_args: List[str],
        boot_timeout: float = BOOT_TIMEOUT,
    ) -> None:
        self.lane = lane
        self.label = label
        self.workdir = workdir
        self.serve_args = list(serve_args)
        self.boot_timeout = boot_timeout
        self.feed_path = os.path.join(workdir, f"shard-{lane}.feed.sock")
        self.control_path = os.path.join(workdir, f"shard-{lane}.ctl.sock")
        self.snapshot_dir = os.path.join(workdir, f"shard-{lane}.snapshots")
        self.log_path = os.path.join(workdir, f"shard-{lane}.log")
        self.process: Optional[subprocess.Popen] = None
        self.frames_sent = 0
        self.restarts = 0
        self._log: Optional[IO[bytes]] = None
        self._feed_socket: Optional[socket_module.socket] = None
        self._feed_stream = None
        self._writer: Optional[FrameWriter] = None

    # -- addresses ------------------------------------------------------

    @property
    def control_address(self) -> str:
        return f"unix:{self.control_path}"

    @property
    def feed_address(self) -> str:
        return f"unix:{self.feed_path}"

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def has_snapshot(self) -> bool:
        return (os.path.isdir(self.snapshot_dir)
                and latest_snapshot(self.snapshot_dir) is not None)

    def client(
        self,
        timeout: Optional[float] = 30.0,
        connect_retry: Optional[float] = None,
    ) -> ControlClient:
        """A fresh control connection to this daemon."""
        return ControlClient(
            self.control_address, timeout, connect_retry=connect_retry
        )

    # -- lifecycle ------------------------------------------------------

    def launch(self) -> None:
        if self.alive:
            return
        self._spawn(restore=False)

    def relaunch(self, restore: bool) -> None:
        """Respawn the daemon (warm from its latest snapshot when
        ``restore``); the caller resends the retained frame stream."""
        self._close_feed()
        self._reap()
        self.restarts += 1
        self._spawn(restore=restore)

    def restart(self) -> None:
        """Crash recovery: respawn warm when a snapshot exists, cold
        otherwise (either way the supervisor's full resend is exact)."""
        self.relaunch(restore=self.has_snapshot())

    def _spawn(self, restore: bool) -> None:
        os.makedirs(self.snapshot_dir, exist_ok=True)
        argv = [
            sys.executable, "-m", "repro.cli", "serve",
            "--source", "socket",
            "--feed", self.feed_address,
            "--control", self.control_address,
            "--snapshot-dir", self.snapshot_dir,
        ]
        if restore:
            argv += ["--restore", self.snapshot_dir]
        else:
            argv += self.serve_args
        self._log = open(self.log_path, "ab")
        self.process = subprocess.Popen(
            argv, stdout=self._log, stderr=subprocess.STDOUT,
            env={**os.environ, "PYTHONUNBUFFERED": "1"},
        )
        self._wait_ready()
        self._connect_feed()
        self.frames_sent = 0

    def _wait_ready(self) -> None:
        """Poll the control socket until the child answers ``health`` —
        interleaved with process-liveness checks so a child that died on
        boot fails fast with its log tail instead of timing out."""
        deadline = time.monotonic() + self.boot_timeout
        while True:
            if self.process is None or self.process.poll() is not None:
                raise FleetError(
                    f"shard {self.label} exited during boot "
                    f"(rc={self.process.returncode if self.process else '?'}):\n"
                    f"{_log_tail(self.log_path)}"
                )
            try:
                with self.client(timeout=5.0, connect_retry=1.0) as client:
                    client.health()
                return
            except (ControlError, OSError):
                if time.monotonic() >= deadline:
                    raise FleetError(
                        f"shard {self.label} control socket not ready "
                        f"after {self.boot_timeout:.0f}s"
                    )

    def _connect_feed(self) -> None:
        sock = socket_module.socket(socket_module.AF_UNIX)
        try:
            sock.connect(self.feed_path)
        except OSError:
            sock.close()
            raise
        self._feed_socket = sock
        self._feed_stream = sock.makefile("wb")
        self._writer = FrameWriter(self._feed_stream)

    def send(self, chunk: PacketTable) -> None:
        """Write one lane chunk as a binary frame (pool-delta encoded)."""
        if self._writer is None:
            raise FleetError(f"shard {self.label} has no feed connection")
        self._writer.send(chunk)
        self.frames_sent += 1

    def ping(self) -> dict:
        """Process liveness plus the daemon's own health view."""
        report = {
            "lane": self.lane,
            "label": self.label,
            "pid": self.process.pid if self.process else None,
            "restarts": self.restarts,
            "frames_sent": self.frames_sent,
        }
        if not self.alive:
            report["status"] = "down"
            report["returncode"] = (
                self.process.returncode if self.process else None
            )
            return report
        try:
            with self.client(timeout=5.0) as client:
                health = client.health()
        except (ControlError, OSError) as error:
            report["status"] = "unreachable"
            report["error"] = str(error)
            return report
        report["status"] = health.get("status", "unknown")
        report["chunks_done"] = health.get("chunks_done", 0)
        report["queue_depth"] = health.get("queue_depth", 0)
        return report

    def kill(self) -> None:
        """Hard-kill the child (crash injection; tests and chaos drills)."""
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
            self.process.wait()

    def stop(self) -> None:
        """Graceful teardown: close the feed (EOF finalizes the service)
        and reap; escalate to shutdown-then-kill if the child lingers."""
        self._close_feed()
        if self.process is not None and self.process.poll() is None:
            try:
                self.process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                try:
                    with self.client(timeout=5.0) as client:
                        client.shutdown()
                except (ControlError, OSError):
                    pass
                try:
                    self.process.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    self.process.kill()
                    self.process.wait()
        self._reap()

    def wait(self, timeout: Optional[float] = None) -> int:
        if self.process is None:
            return 0
        return self.process.wait(timeout=timeout)

    # -- internals ------------------------------------------------------

    def _close_feed(self) -> None:
        for closer in (self._feed_stream, self._feed_socket):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._feed_stream = None
        self._feed_socket = None
        self._writer = None

    def _reap(self) -> None:
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
            self.process.wait()
        if self._log is not None:
            self._log.close()
            self._log = None
