"""repro — a full reproduction of *Bounding Peer-to-Peer Upload Traffic in
Client Networks* (Chun-Ying Huang and Chin-Laung Lei, DSN 2007).

The package implements the paper's {k×N}-bitmap filter together with every
substrate its evaluation depends on:

* :mod:`repro.core` — the bitmap filter, Bloom filters, drop policies,
  throughput meters and the closed-form false-positive model.
* :mod:`repro.net` — packets, IPv4/TCP/UDP codecs, pcap I/O, flow tracking.
* :mod:`repro.analyzer` — the section-3 traffic analyzer (L7 patterns,
  port fallback, connection statistics, out-in delay measurement).
* :mod:`repro.filters` — SPI and naïve-timer baselines plus the bitmap
  filter behind one interface.
* :mod:`repro.workload` — a synthetic client-network trace generator
  calibrated against the paper's published traffic characteristics.
* :mod:`repro.sim` — the trace-replay evaluation harness (section 5.3).

Quickstart::

    from repro import BitmapFilterConfig, BitmapPacketFilter, DropController

    filt = BitmapPacketFilter(
        BitmapFilterConfig(size=2**20, vectors=4, hashes=3, rotate_interval=5.0),
        drop_controller=DropController.red_mbps(low_mbps=50, high_mbps=100),
    )
"""

from repro.core import (
    BitmapFilter,
    BitmapFilterConfig,
    BloomFilter,
    FieldMode,
    RedDropPolicy,
    StaticDropPolicy,
    capacity_bound,
    optimal_hash_count,
    penetration_probability,
    recommend_parameters,
)
from repro.filters import (
    BitmapPacketFilter,
    BlockedConnectionStore,
    CountingBitmapFilter,
    FilterChain,
    NaiveTimerFilter,
    PacketFilter,
    SPIFilter,
    SnapshotUnsupported,
    TokenBucketFilter,
    Verdict,
    restore_filter,
)
from repro.filters.policy import DropController
from repro.net import Direction, Packet, SocketPair

__version__ = "1.0.0"

__all__ = [
    "BitmapFilter",
    "BitmapFilterConfig",
    "BloomFilter",
    "FieldMode",
    "RedDropPolicy",
    "StaticDropPolicy",
    "capacity_bound",
    "optimal_hash_count",
    "penetration_probability",
    "recommend_parameters",
    "PacketFilter",
    "Verdict",
    "SPIFilter",
    "NaiveTimerFilter",
    "BitmapPacketFilter",
    "CountingBitmapFilter",
    "TokenBucketFilter",
    "BlockedConnectionStore",
    "FilterChain",
    "SnapshotUnsupported",
    "restore_filter",
    "DropController",
    "Direction",
    "Packet",
    "SocketPair",
    "__version__",
]
