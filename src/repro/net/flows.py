"""Connection tracking: flow records and a connection table.

The traffic analyzer (paper section 3.2) "first classifies packets into
connections" keyed by the five-tuple socket pair, where a pair and its
inverse identify the same connection.  It then logs per-connection
properties: direction, packets and bytes per direction, lifetime, and
out-in packet delays.  :class:`ConnectionTable` implements that bookkeeping.

TCP lifetimes are "counted from the first TCP-SYN packet to the appearance
of a valid TCP-FIN or TCP-RST packet" (section 3.3); UDP flows are bounded
by an idle timeout.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional

from repro.net.inet import IPPROTO_TCP
from repro.net.packet import Direction, Packet, SocketPair


class TCPState(enum.Enum):
    """Coarse TCP connection lifecycle, enough for lifetime accounting."""

    SYN_SEEN = "syn-seen"
    ESTABLISHED = "established"
    CLOSED = "closed"


class FlowRecord:
    """Accumulated state for one connection (both directions)."""

    __slots__ = (
        "pair",
        "direction",
        "first_seen",
        "last_seen",
        "syn_time",
        "close_time",
        "state",
        "packets_fwd",
        "packets_rev",
        "bytes_fwd",
        "bytes_rev",
        "application",
        "saw_syn",
    )

    def __init__(self, pair: SocketPair, direction: Optional[Direction], now: float):
        #: The socket pair of the *first* packet observed; "forward" below
        #: means packets matching this orientation.
        self.pair = pair
        #: Direction of the connection == direction of its first packet
        #: (who initiated it, from the client network's point of view).
        self.direction = direction
        self.first_seen = now
        self.last_seen = now
        self.syn_time: Optional[float] = None
        self.close_time: Optional[float] = None
        self.state: Optional[TCPState] = None
        self.packets_fwd = 0
        self.packets_rev = 0
        self.bytes_fwd = 0
        self.bytes_rev = 0
        #: Filled in by the analyzer's classifier; None = not yet identified.
        self.application: Optional[str] = None
        self.saw_syn = False

    # -- derived properties -------------------------------------------------

    @property
    def packets(self) -> int:
        """Total packets in both directions."""
        return self.packets_fwd + self.packets_rev

    @property
    def bytes(self) -> int:
        """Total bytes in both directions."""
        return self.bytes_fwd + self.bytes_rev

    @property
    def lifetime(self) -> Optional[float]:
        """SYN-to-FIN/RST lifetime for cleanly observed TCP connections,
        first-to-last packet span otherwise."""
        if self.pair.protocol == IPPROTO_TCP:
            if self.syn_time is None:
                return None
            end = self.close_time if self.close_time is not None else self.last_seen
            return end - self.syn_time
        return self.last_seen - self.first_seen

    def observe(self, packet: Packet, forward: bool) -> None:
        """Fold one packet into the record."""
        self.last_seen = packet.timestamp
        if forward:
            self.packets_fwd += 1
            self.bytes_fwd += packet.size
        else:
            self.packets_rev += 1
            self.bytes_rev += packet.size
        if self.pair.protocol != IPPROTO_TCP:
            return
        if packet.is_syn and self.syn_time is None:
            self.syn_time = packet.timestamp
            self.state = TCPState.SYN_SEEN
            self.saw_syn = True
        elif packet.is_synack and self.state is TCPState.SYN_SEEN:
            self.state = TCPState.ESTABLISHED
        if (packet.is_fin or packet.is_rst) and self.close_time is None:
            self.close_time = packet.timestamp
            self.state = TCPState.CLOSED


class ConnectionTable:
    """Map packets to connections, keyed by the canonical socket pair.

    ``udp_timeout`` bounds how long an idle UDP "connection" stays alive;
    the paper has no explicit close signal for UDP so idleness defines the
    flow boundary.  Closed/expired flows are moved to :attr:`finished` so
    reports can iterate everything observed.
    """

    def __init__(self, udp_timeout: float = 120.0, tcp_timeout: float = 3600.0):
        if udp_timeout <= 0 or tcp_timeout <= 0:
            raise ValueError("timeouts must be positive")
        self.udp_timeout = udp_timeout
        self.tcp_timeout = tcp_timeout
        self.active: Dict[SocketPair, FlowRecord] = {}
        self.finished: List[FlowRecord] = []
        self._last_expiry_scan = 0.0
        #: How often to sweep for idle flows (seconds of trace time).
        self.expiry_scan_interval = 30.0

    def __len__(self) -> int:
        return len(self.active)

    @property
    def total_flows(self) -> int:
        """Active plus finished flows."""
        return len(self.active) + len(self.finished)

    def observe(self, packet: Packet) -> FlowRecord:
        """Record a packet; returns its (possibly new) flow record.

        A closed TCP flow lingers in the table (TIME_WAIT-style) so the
        tail of the FIN handshake attaches to the same record; only a
        fresh SYN on the same five-tuple (port reuse) starts a new flow.
        """
        key = packet.pair.canonical
        record = self.active.get(key)
        if record is not None and record.state is TCPState.CLOSED and packet.is_syn:
            self.finished.append(record)
            record = None
        if record is None:
            record = FlowRecord(packet.pair, packet.direction, packet.timestamp)
            self.active[key] = record
        forward = packet.pair == record.pair
        record.observe(packet, forward)
        if packet.timestamp - self._last_expiry_scan >= self.expiry_scan_interval:
            self.expire_idle(packet.timestamp)
        return record

    def expire_idle(self, now: float) -> int:
        """Retire flows idle past their timeout; returns how many expired."""
        self._last_expiry_scan = now
        expired = [
            key
            for key, record in self.active.items()
            if now - record.last_seen
            > (self.tcp_timeout if record.pair.protocol == IPPROTO_TCP else self.udp_timeout)
        ]
        for key in expired:
            self.finished.append(self.active.pop(key))
        return len(expired)

    def flush(self) -> None:
        """Move every remaining active flow to :attr:`finished` (end of trace)."""
        self.finished.extend(self.active.values())
        self.active.clear()

    def all_flows(self) -> Iterator[FlowRecord]:
        """Iterate finished then still-active flows."""
        yield from self.finished
        yield from self.active.values()

    def lookup(self, pair: SocketPair) -> Optional[FlowRecord]:
        """Find the active flow for a socket pair (or its inverse)."""
        return self.active.get(pair.canonical)
