"""Length-prefixed packet framing for live socket feeds.

The service plane's socket source receives packet chunks from another
process (a capture shim, a replay driver) over a byte stream.  Frames are
``!I``-prefixed: a 4-byte big-endian payload length followed by the
payload.  The payload codec here carries one
:class:`~repro.net.table.PacketTable` chunk as JSON rows — plain data,
no pickle across trust boundaries.

Row shape (one list per packet, timestamp-ordered)::

    [timestamp, protocol, src_addr, src_port, dst_addr, dst_port,
     size, flags, outbound, payload_b64]

``payload_b64`` is the base64 application payload, ``""`` when empty
(the common case for a live feed — filters decide on headers).
"""

from __future__ import annotations

import base64
import json
import struct
from typing import BinaryIO, Optional

from repro.net.packet import SocketPair
from repro.net.table import PacketTable

_LENGTH = struct.Struct("!I")

#: Upper bound on one frame's payload — a corrupt or hostile length
#: prefix must not trigger a multi-gigabyte allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class FramingError(ValueError):
    """A stream violated the framing protocol (truncation, oversize)."""


def write_frame(stream: BinaryIO, payload: bytes) -> None:
    """Write one length-prefixed frame."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FramingError(f"frame too large: {len(payload)} bytes")
    stream.write(_LENGTH.pack(len(payload)))
    stream.write(payload)


def _read_exact(stream: BinaryIO, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on clean EOF at a frame
    boundary, :class:`FramingError` on mid-frame truncation."""
    chunks = []
    remaining = count
    while remaining:
        piece = stream.read(remaining)
        if not piece:
            if remaining == count:
                return None
            raise FramingError(
                f"stream truncated mid-frame: wanted {count} bytes, "
                f"got {count - remaining}"
            )
        chunks.append(piece)
        remaining -= len(piece)
    return b"".join(chunks)


def read_frame(stream: BinaryIO) -> Optional[bytes]:
    """Read one frame's payload; ``None`` on clean EOF."""
    header = _read_exact(stream, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FramingError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    if length == 0:
        return b""
    payload = _read_exact(stream, length)
    if payload is None:
        raise FramingError("stream truncated after frame header")
    return payload


def encode_table(table: PacketTable) -> bytes:
    """Serialize one table chunk as a frame payload."""
    rows = []
    for position in range(len(table)):
        pair = table.pairs[table.pair_ids[position]]
        payload = table.payloads[table.payload_ids[position]]
        rows.append([
            table.timestamps[position],
            pair.protocol, pair.src_addr, pair.src_port,
            pair.dst_addr, pair.dst_port,
            table.sizes[position], table.flags[position],
            table.outbound[position],
            base64.b64encode(payload).decode("ascii") if payload else "",
        ])
    return json.dumps(rows, separators=(",", ":")).encode("utf-8")


def decode_table(payload: bytes, pool: Optional[PacketTable] = None) -> PacketTable:
    """Rebuild a table chunk from :func:`encode_table` output.

    ``pool`` makes the chunk share a long-lived table's interned
    flow/payload pools (:meth:`PacketTable.spawn`), so a feed's
    ``pair_ids`` stay stable across frames just like the generator's
    chunk stream.
    """
    table = pool.spawn() if pool is not None else PacketTable()
    append_row = table.append_row
    for row in json.loads(payload.decode("utf-8")):
        (timestamp, protocol, src_addr, src_port, dst_addr, dst_port,
         size, flags, outbound, payload_b64) = row
        append_row(
            timestamp,
            SocketPair(protocol, src_addr, src_port, dst_addr, dst_port),
            size,
            flags,
            base64.b64decode(payload_b64) if payload_b64 else b"",
            outbound,
        )
    return table
