"""Length-prefixed packet framing and the binary columnar table codec.

The service plane's socket source receives packet chunks from another
process (a capture shim, a replay driver) over a byte stream.  Frames
are ``!I``-prefixed: a 4-byte big-endian payload length followed by the
payload.  An *empty* payload is a keepalive — it decodes to an empty
chunk and carries no packets.

Two payload codecs carry one :class:`~repro.net.table.PacketTable`
chunk per frame:

* **Binary columnar** (the default, :class:`TableEncoder` /
  :func:`encode_table`): a versioned little-endian layout that ships the
  table's raw column buffers plus *pool deltas* — only the socket pairs
  and payloads the receiver has not seen yet — so a feed's ``pair_ids``
  stay stable across frames without re-interning, and encode/decode is
  bulk ``array`` I/O instead of per-row work.
* **JSON rows** (:func:`encode_table_json`, the legacy format): one
  list per packet with base64 payloads.  Kept as a compat path; the
  decoder recognizes both formats by sniffing the payload's first bytes.

Binary frame payload layout (all multi-byte header fields big-endian,
column data little-endian)::

    magic         4 bytes   0xAB 'R' 'P' 'T'
    version       1 byte    (currently 1)
    flags         1 byte    (reserved, must be 0)
    pair_base     !I        pairs the decoder pool must already hold
    pair_new      !I        socket pairs appended by this frame
    payload_base  !I        payload-pool entries already held (>= 1:
                            entry 0 is the implicit empty payload)
    payload_new   !I        payloads appended by this frame
    rows          !I        packets in this chunk
    pair delta    pair_new x 13 bytes  (!BIHIH: proto, src, sport, dst, dport)
    payload delta payload_new x (!I length + raw bytes)
    columns       6 x (!I byte-length + raw little-endian buffer), in
                  order: timestamps f64, sizes i64, flags u32,
                  outbound i8, pair_ids i64, payload_ids i64

Pool-delta semantics: a :class:`TableEncoder` tracks how much of the
chunk stream's shared interned pool it has already shipped and sends
only the tail (``pair_base`` = entries sent so far).  The decoder
appends the delta to its pool table and the frame's id columns index it
directly — lockstep, no re-interning.  A *standalone* frame
(``pair_base == 0``, ``payload_base == 1``) carries its entire pool;
decoding one against a non-empty pool falls back to re-interning so
independent feeders can still share one receiver pool.  Any other
base/pool mismatch is a desync and raises :class:`FramingError`.

No pickle ever crosses this trust boundary: a corrupt or hostile frame
can raise :class:`FramingError`, never execute code.
"""

from __future__ import annotations

import base64
import json
import struct
import sys
from array import array
from typing import BinaryIO, List, Optional, Sequence, Tuple

from repro.net.packet import SocketPair
from repro.net.table import PacketTable

_LENGTH = struct.Struct("!I")

#: Upper bound on one frame's payload — a corrupt or hostile length
#: prefix must not trigger a multi-gigabyte allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: First bytes of a binary table payload.  0xAB is not printable ASCII,
#: so a binary frame can never be confused with the JSON-rows format.
MAGIC = b"\xabRPT"

#: Binary table codec version carried in every frame.
WIRE_VERSION = 1

_HEADER = struct.Struct("!4sBBIIIII")
_PAIR = struct.Struct("!BIHIH")
_U32 = struct.Struct("!I")

#: Wire columns in frame order: (table attribute, wire typecode, itemsize).
#: ``pair_ids``/``payload_ids`` are platform-``long`` arrays in memory but
#: always 8-byte on the wire; ``flags`` is always 4-byte.
_WIRE_COLUMNS = (
    ("timestamps", "d", 8),
    ("sizes", "q", 8),
    ("flags", "I", 4),
    ("outbound", "b", 1),
    ("pair_ids", "q", 8),
    ("payload_ids", "q", 8),
)

_BIG_ENDIAN_HOST = sys.byteorder == "big"


class FramingError(ValueError):
    """A stream violated the framing protocol (truncation, oversize,
    corrupt or unrecognized table payload)."""


# ---------------------------------------------------------------------------
# Frame I/O
# ---------------------------------------------------------------------------


def write_frame(stream: BinaryIO, payload: bytes) -> None:
    """Write one length-prefixed frame and flush it to the peer.

    The flush matters: feeders typically write through a buffered
    ``socket.makefile("wb")``, and without it a frame sits in the
    userspace buffer until the stream closes — a live service would see
    its feed stall for the feeder's whole lifetime.
    """
    if len(payload) > MAX_FRAME_BYTES:
        raise FramingError(f"frame too large: {len(payload)} bytes")
    stream.write(_LENGTH.pack(len(payload)))
    stream.write(payload)
    flush = getattr(stream, "flush", None)
    if flush is not None:
        flush()


def _read_exact(stream: BinaryIO, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on clean EOF at a frame
    boundary, :class:`FramingError` on mid-frame truncation."""
    chunks = []
    remaining = count
    while remaining:
        piece = stream.read(remaining)
        if not piece:
            if remaining == count:
                return None
            raise FramingError(
                f"stream truncated mid-frame: wanted {count} bytes, "
                f"got {count - remaining}"
            )
        chunks.append(piece)
        remaining -= len(piece)
    return b"".join(chunks)


def read_frame(stream: BinaryIO) -> Optional[bytes]:
    """Read one frame's payload; ``None`` on clean EOF.

    ``b""`` is a valid return — a keepalive frame — and decodes to an
    empty chunk (:func:`decode_table` handles it)."""
    header = _read_exact(stream, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FramingError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    if length == 0:
        return b""
    payload = _read_exact(stream, length)
    if payload is None:
        raise FramingError("stream truncated after frame header")
    return payload


# ---------------------------------------------------------------------------
# Pool packing (shared with the shared-memory worker transport)
# ---------------------------------------------------------------------------


def pack_pairs(pairs: Sequence[SocketPair]) -> bytes:
    """Serialize socket pairs as fixed 13-byte records."""
    pack = _PAIR.pack
    return b"".join(pack(*pair) for pair in pairs)


def unpack_pairs(buffer, count: Optional[int] = None) -> List[SocketPair]:
    """Inverse of :func:`pack_pairs`; validates the record boundary."""
    size = _PAIR.size
    total = len(buffer)
    if count is None:
        if total % size:
            raise FramingError(f"pair pool length {total} not a multiple of {size}")
        count = total // size
    elif count * size > total:
        raise FramingError(
            f"pair delta truncated: {count} pairs need {count * size} bytes, "
            f"got {total}"
        )
    unpack_from = _PAIR.unpack_from
    return [SocketPair(*unpack_from(buffer, i * size)) for i in range(count)]


def pack_payloads(payloads: Sequence[bytes]) -> bytes:
    """Serialize payload blobs as length-prefixed records."""
    pack = _U32.pack
    return b"".join(pack(len(blob)) + blob for blob in payloads)


def unpack_payloads(buffer, count: Optional[int] = None) -> List[bytes]:
    """Inverse of :func:`pack_payloads`; validates every record boundary."""
    blobs: List[bytes] = []
    offset = 0
    total = len(buffer)
    while offset < total if count is None else len(blobs) < count:
        if offset + _U32.size > total:
            raise FramingError("payload delta truncated in a length prefix")
        (length,) = _U32.unpack_from(buffer, offset)
        offset += _U32.size
        if offset + length > total:
            raise FramingError(
                f"payload delta truncated: record wants {length} bytes, "
                f"{total - offset} left"
            )
        blobs.append(bytes(buffer[offset:offset + length]))
        offset += length
    return blobs


# ---------------------------------------------------------------------------
# Column conversion (native array/buffer <-> little-endian wire bytes)
# ---------------------------------------------------------------------------


def _column_to_wire(column, wire_typecode: str, wire_size: int) -> bytes:
    """One column's raw little-endian wire bytes.

    ``array`` columns whose itemsize already matches the wire width are
    dumped wholesale; platform-width mismatches (``'l'`` on 32-bit
    builds) and zero-copy ``memoryview`` columns convert elementwise.
    """
    if getattr(column, "itemsize", None) == wire_size and not _BIG_ENDIAN_HOST:
        return column.tobytes()
    converted = array(wire_typecode, column)
    if _BIG_ENDIAN_HOST and wire_size > 1:
        converted.byteswap()
    return converted.tobytes()


def _column_from_wire(raw, wire_typecode: str, wire_size: int,
                      native_typecode: str) -> array:
    """Rebuild a native column array from wire bytes."""
    native = array(native_typecode)
    if native.itemsize == wire_size and not _BIG_ENDIAN_HOST:
        native.frombytes(raw)
        return native
    wire = array(wire_typecode)
    wire.frombytes(raw)
    if _BIG_ENDIAN_HOST and wire_size > 1:
        wire.byteswap()
    if native.itemsize == wire.itemsize and native.typecode == wire.typecode:
        return wire
    return array(native_typecode, wire)


# ---------------------------------------------------------------------------
# Binary columnar codec
# ---------------------------------------------------------------------------


class TableEncoder:
    """Stateful binary encoder for a pool-sharing chunk stream.

    The generator's ``iter_tables`` stream (and any :meth:`PacketTable.spawn`
    chain) shares one growing interned pool across chunks; the encoder
    remembers how much of that pool it has shipped and each frame carries
    only the new tail, so the receiver's ``pair_ids`` stay stable without
    re-interning.  Feeding a table backed by a *different* pool object
    restarts the delta clock (the frame ships its full pool and decodes
    through the standalone path).
    """

    def __init__(self) -> None:
        self._pool_id: Optional[int] = None
        self._pairs_sent = 0
        self._payloads_sent = 1  # entry 0 is the implicit empty payload

    def encode(self, table: PacketTable) -> bytes:
        pairs = table.pairs
        payloads = table.payloads
        if self._pool_id != id(pairs):
            self._pool_id = id(pairs)
            self._pairs_sent = 0
            self._payloads_sent = 1
        pair_base = self._pairs_sent
        payload_base = self._payloads_sent
        new_pairs = pairs[pair_base:]
        new_payloads = payloads[payload_base:]
        rows = len(table)

        parts = [
            _HEADER.pack(MAGIC, WIRE_VERSION, 0, pair_base, len(new_pairs),
                         payload_base, len(new_payloads), rows),
            pack_pairs(new_pairs),
            pack_payloads(new_payloads),
        ]
        for name, wire_typecode, wire_size in _WIRE_COLUMNS:
            raw = _column_to_wire(getattr(table, name), wire_typecode, wire_size)
            parts.append(_U32.pack(len(raw)))
            parts.append(raw)

        self._pairs_sent = len(pairs)
        self._payloads_sent = len(payloads)
        return b"".join(parts)


def encode_table(table: PacketTable) -> bytes:
    """Serialize one table chunk as a standalone binary frame payload.

    Ships the table's entire pool; for a chunk *stream* over one shared
    pool, use a :class:`TableEncoder` so frames carry pool deltas.
    """
    return TableEncoder().encode(table)


def encode_table_json(table: PacketTable) -> bytes:
    """The legacy JSON-rows payload (compat path; see module docs).

    Row shape (one list per packet, timestamp-ordered)::

        [timestamp, protocol, src_addr, src_port, dst_addr, dst_port,
         size, flags, outbound, payload_b64]
    """
    rows = []
    for position in range(len(table)):
        pair = table.pairs[table.pair_ids[position]]
        payload = table.payloads[table.payload_ids[position]]
        rows.append([
            table.timestamps[position],
            pair.protocol, pair.src_addr, pair.src_port,
            pair.dst_addr, pair.dst_port,
            table.sizes[position], table.flags[position],
            table.outbound[position],
            base64.b64encode(payload).decode("ascii") if payload else "",
        ])
    return json.dumps(rows, separators=(",", ":")).encode("utf-8")


def decode_table(payload: bytes, pool: Optional[PacketTable] = None) -> PacketTable:
    """Rebuild a table chunk from any supported frame payload.

    Sniffs the format: empty payloads are keepalives (an empty chunk),
    :data:`MAGIC` selects the binary columnar codec, a ``[`` selects the
    legacy JSON-rows codec, and anything else raises
    :class:`FramingError`.

    ``pool`` makes the chunk share a long-lived table's interned
    flow/payload pools (:meth:`PacketTable.spawn`), so a feed's
    ``pair_ids`` stay stable across frames — appended in place on the
    binary lockstep path, re-interned for JSON and standalone binary
    frames.
    """
    if not payload:
        return pool.spawn() if pool is not None else PacketTable()
    head = payload[:1]
    if head == MAGIC[:1]:
        if payload[:4] != MAGIC:
            raise FramingError(f"bad magic: {payload[:4]!r}")
        return _decode_binary(payload, pool)
    if head == b"[":
        return _decode_json(payload, pool)
    raise FramingError(
        f"unrecognized table payload (first byte {head!r} is neither the "
        f"binary magic nor JSON rows)"
    )


def _decode_json(payload: bytes, pool: Optional[PacketTable]) -> PacketTable:
    table = pool.spawn() if pool is not None else PacketTable()
    append_row = table.append_row
    try:
        rows = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise FramingError(f"corrupt JSON table payload: {error}") from None
    for row in rows:
        (timestamp, protocol, src_addr, src_port, dst_addr, dst_port,
         size, flags, outbound, payload_b64) = row
        append_row(
            timestamp,
            SocketPair(protocol, src_addr, src_port, dst_addr, dst_port),
            size,
            flags,
            base64.b64decode(payload_b64) if payload_b64 else b"",
            outbound,
        )
    return table


def _decode_binary(payload: bytes, pool: Optional[PacketTable]) -> PacketTable:
    try:
        (magic, version, flags, pair_base, pair_new, payload_base,
         payload_new, rows) = _HEADER.unpack_from(payload, 0)
    except struct.error as error:
        raise FramingError(f"binary frame header truncated: {error}") from None
    if version != WIRE_VERSION:
        raise FramingError(
            f"unsupported wire version {version} (this build speaks "
            f"{WIRE_VERSION})"
        )
    if flags != 0:
        raise FramingError(f"reserved frame flags set: {flags:#04x}")
    if payload_base < 1:
        raise FramingError(
            f"payload_base {payload_base} < 1 (entry 0 is the implicit "
            f"empty payload)"
        )
    offset = _HEADER.size

    end = offset + pair_new * _PAIR.size
    if end > len(payload):
        raise FramingError(
            f"pair delta truncated: {pair_new} pairs need "
            f"{pair_new * _PAIR.size} bytes, {len(payload) - offset} left"
        )
    new_pairs = unpack_pairs(memoryview(payload)[offset:end], pair_new)
    offset = end

    remainder = memoryview(payload)[offset:]
    new_payloads = unpack_payloads(remainder, payload_new)
    for blob in new_payloads:
        offset += _U32.size + len(blob)

    columns = {}
    for name, wire_typecode, wire_size in _WIRE_COLUMNS:
        if offset + _U32.size > len(payload):
            raise FramingError(f"column {name} truncated in its length prefix")
        (nbytes,) = _U32.unpack_from(payload, offset)
        offset += _U32.size
        if nbytes != rows * wire_size:
            raise FramingError(
                f"column {name} length mismatch: {nbytes} bytes for {rows} "
                f"rows of {wire_size}"
            )
        if offset + nbytes > len(payload):
            raise FramingError(
                f"column {name} truncated: wants {nbytes} bytes, "
                f"{len(payload) - offset} left"
            )
        columns[name] = _column_from_wire(
            memoryview(payload)[offset:offset + nbytes],
            wire_typecode, wire_size, PacketTable.COLUMN_TYPECODES[name],
        )
        offset += nbytes
    if offset != len(payload):
        raise FramingError(
            f"{len(payload) - offset} trailing bytes after the last column"
        )

    standalone = pair_base == 0 and payload_base == 1
    if pool is None:
        if not standalone:
            raise FramingError(
                f"delta frame (pair_base={pair_base}, "
                f"payload_base={payload_base}) needs a pool table"
            )
        table = PacketTable()
        table.pairs = new_pairs
        table.payloads = [b""] + new_payloads
        table._pair_index = None
        table._payload_index = None
        pair_count, payload_count = len(new_pairs), 1 + len(new_payloads)
    elif pair_base == len(pool.pairs) and payload_base == len(pool.payloads):
        # Lockstep delta: append in place, ids index the pool directly.
        pair_index = pool._ensure_pair_index()
        for pair in new_pairs:
            pair_index[pair] = len(pool.pairs)
            pool.pairs.append(pair)
        payload_index = pool._ensure_payload_index()
        for blob in new_payloads:
            payload_index[blob] = len(pool.payloads)
            pool.payloads.append(blob)
        table = pool.spawn()
        pair_count, payload_count = len(pool.pairs), len(pool.payloads)
    elif standalone:
        # A full-pool frame against an already-populated pool: re-intern
        # (the JSON decoder's semantics) so independent feeders can share
        # one receiver pool at the cost of an id remap.
        remap_pair = array("l", (pool._pair_id(pair) for pair in new_pairs))
        remap_payload = array("l", [0])
        remap_payload.extend(pool._payload_id(blob) for blob in new_payloads)
        try:
            columns["pair_ids"] = array(
                "l", (remap_pair[pid] for pid in columns["pair_ids"])
            )
            columns["payload_ids"] = array(
                "l", (remap_payload[pid] for pid in columns["payload_ids"])
            )
        except IndexError:
            raise FramingError("id column references a pair/payload beyond "
                               "the frame's pool") from None
        table = pool.spawn()
        pair_count, payload_count = len(pool.pairs), len(pool.payloads)
    else:
        raise FramingError(
            f"pool desync: frame expects {pair_base} pairs / {payload_base} "
            f"payloads already interned, pool holds {len(pool.pairs)} / "
            f"{len(pool.payloads)}"
        )

    if rows:
        pair_ids = columns["pair_ids"]
        payload_ids = columns["payload_ids"]
        if min(pair_ids) < 0 or max(pair_ids) >= pair_count:
            raise FramingError("pair_ids column indexes beyond the pool")
        if min(payload_ids) < 0 or max(payload_ids) >= payload_count:
            raise FramingError("payload_ids column indexes beyond the pool")
        if min(columns["sizes"]) < 0:
            raise FramingError("negative packet size in sizes column")
    for name, _, _ in _WIRE_COLUMNS:
        setattr(table, name, columns[name])
    return table


class FrameWriter:
    """A feeder's sending half: stateful pool-delta frames, flushed.

    Wraps a writable binary stream (typically ``socket.makefile("wb")``)
    and encodes each chunk with one long-lived :class:`TableEncoder`, so
    a pool-sharing chunk stream ships pool deltas.  ``binary=False``
    selects the legacy JSON-rows payload for old receivers.
    """

    def __init__(self, stream: BinaryIO, binary: bool = True) -> None:
        self.stream = stream
        self._encoder: Optional[TableEncoder] = TableEncoder() if binary else None
        self.frames_sent = 0
        self.bytes_sent = 0

    def send(self, table: PacketTable) -> int:
        """Encode and write one chunk; returns the payload byte count."""
        if self._encoder is not None:
            payload = self._encoder.encode(table)
        else:
            payload = encode_table_json(table)
        write_frame(self.stream, payload)
        self.frames_sent += 1
        self.bytes_sent += len(payload)
        return len(payload)

    def keepalive(self) -> None:
        """Write an empty frame (decodes to an empty chunk)."""
        write_frame(self.stream, b"")
        self.frames_sent += 1
