"""IPv4 / TCP / UDP header encoding and decoding.

The trace generator emits real wire-format packets (so traces round-trip
through pcap files and third-party tools), and the pcap reader parses them
back into :class:`repro.net.packet.Packet` objects.  Only the fields the
paper's systems consume are modelled; IP options and TCP options are
supported structurally (header-length fields are honoured) but not
interpreted.
"""

from __future__ import annotations

import enum
import struct
from typing import NamedTuple, Optional, Tuple

from repro.net.inet import (
    IPPROTO_TCP,
    IPPROTO_UDP,
    internet_checksum,
    pseudo_header,
)
from repro.net.packet import Packet, SocketPair

IPV4_MIN_HEADER = 20
TCP_MIN_HEADER = 20
UDP_HEADER = 8


class TCPFlags(enum.IntFlag):
    """TCP control bits (low octet of offset/flags word)."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20


class IPv4Header(NamedTuple):
    """IPv4 header fields (no options) with checksummed encoding."""

    src: int
    dst: int
    protocol: int
    total_length: int
    ttl: int = 64
    ident: int = 0

    def encode(self) -> bytes:
        """Serialize with a correct header checksum."""
        header = struct.pack(
            "!BBHHHBBHII",
            (4 << 4) | 5,  # version 4, IHL 5 (no options)
            0,  # DSCP/ECN
            self.total_length,
            self.ident,
            0,  # flags/fragment offset
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            self.src,
            self.dst,
        )
        checksum = internet_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]


class TCPHeader(NamedTuple):
    """TCP header fields (no options) with pseudo-header checksumming."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    window: int = 65535

    def encode(self, src: int, dst: int, payload: bytes) -> bytes:
        """Serialize with a correct pseudo-header checksum."""
        header = struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            5 << 4,  # data offset 5 words, no options
            self.flags & 0xFF,
            self.window,
            0,  # checksum placeholder
            0,  # urgent pointer
        )
        segment = header + payload
        pseudo = pseudo_header(src, dst, IPPROTO_TCP, len(segment))
        checksum = internet_checksum(pseudo + segment)
        return segment[:16] + struct.pack("!H", checksum) + segment[18:]


class UDPHeader(NamedTuple):
    """UDP header fields with pseudo-header checksumming."""

    src_port: int
    dst_port: int

    def encode(self, src: int, dst: int, payload: bytes) -> bytes:
        """Serialize with a correct pseudo-header checksum."""
        length = UDP_HEADER + len(payload)
        header = struct.pack("!HHHH", self.src_port, self.dst_port, length, 0)
        datagram = header + payload
        pseudo = pseudo_header(src, dst, IPPROTO_UDP, length)
        checksum = internet_checksum(pseudo + datagram)
        if checksum == 0:
            checksum = 0xFFFF  # RFC 768: transmitted as all-ones
        return datagram[:6] + struct.pack("!H", checksum) + datagram[8:]


class HeaderError(ValueError):
    """Raised when a buffer cannot be parsed as the expected header."""


def encode_packet(
    pair: SocketPair,
    payload: bytes = b"",
    flags: int = 0,
    seq: int = 0,
    ack: int = 0,
    pad_to: Optional[int] = None,
) -> bytes:
    """Build a full IPv4 wire-format packet for a socket pair.

    ``pad_to`` extends the payload with zero bytes so synthetic packets can
    carry a realistic wire size without fabricating content (used for bulk
    data packets whose payload bytes are irrelevant to every consumer).
    """
    if pad_to is not None and pad_to > len(payload):
        payload = payload + b"\x00" * (pad_to - len(payload))
    if pair.protocol == IPPROTO_TCP:
        transport = TCPHeader(
            pair.src_port, pair.dst_port, seq=seq, ack=ack, flags=flags
        ).encode(pair.src_addr, pair.dst_addr, payload)
    elif pair.protocol == IPPROTO_UDP:
        transport = UDPHeader(pair.src_port, pair.dst_port).encode(
            pair.src_addr, pair.dst_addr, payload
        )
    else:
        transport = payload
    total = IPV4_MIN_HEADER + len(transport)
    ip = IPv4Header(pair.src_addr, pair.dst_addr, pair.protocol, total)
    return ip.encode() + transport


def decode_packet(
    data: bytes, timestamp: float = 0.0, verify_checksums: bool = False
) -> Packet:
    """Parse an IPv4 wire-format packet into a :class:`Packet`.

    Raises :class:`HeaderError` on malformed input.  With
    ``verify_checksums`` the IPv4 header checksum is validated and bad
    packets are rejected, mirroring the paper's analyzer behaviour.
    """
    ip_header, protocol, src, dst, payload_and_transport = _decode_ipv4(data)
    if verify_checksums and internet_checksum(ip_header) != 0:
        raise HeaderError("bad IPv4 header checksum")

    if protocol == IPPROTO_TCP:
        sport, dport, flags, payload = _decode_tcp(payload_and_transport)
    elif protocol == IPPROTO_UDP:
        sport, dport, payload = _decode_udp(payload_and_transport)
        flags = 0
    else:
        sport = dport = 0
        flags = 0
        payload = payload_and_transport

    pair = SocketPair(protocol, src, sport, dst, dport)
    return Packet(timestamp, pair, size=len(data), flags=flags, payload=payload)


def _decode_ipv4(data: bytes) -> Tuple[bytes, int, int, int, bytes]:
    if len(data) < IPV4_MIN_HEADER:
        raise HeaderError(f"truncated IPv4 header ({len(data)} bytes)")
    version_ihl = data[0]
    if version_ihl >> 4 != 4:
        raise HeaderError(f"not IPv4 (version {version_ihl >> 4})")
    ihl = (version_ihl & 0x0F) * 4
    if ihl < IPV4_MIN_HEADER or len(data) < ihl:
        raise HeaderError(f"bad IHL {ihl}")
    total_length = struct.unpack_from("!H", data, 2)[0]
    if total_length < ihl:
        raise HeaderError("total length shorter than header")
    protocol = data[9]
    src, dst = struct.unpack_from("!II", data, 12)
    body = data[ihl:total_length] if total_length <= len(data) else data[ihl:]
    return data[:ihl], protocol, src, dst, body


def _decode_tcp(data: bytes) -> Tuple[int, int, int, bytes]:
    if len(data) < TCP_MIN_HEADER:
        raise HeaderError(f"truncated TCP header ({len(data)} bytes)")
    sport, dport = struct.unpack_from("!HH", data, 0)
    offset_flags = struct.unpack_from("!H", data, 12)[0]
    data_offset = ((offset_flags >> 12) & 0x0F) * 4
    flags = offset_flags & 0x3F
    if data_offset < TCP_MIN_HEADER or data_offset > len(data):
        raise HeaderError(f"bad TCP data offset {data_offset}")
    return sport, dport, flags, data[data_offset:]


def _decode_udp(data: bytes) -> Tuple[int, int, bytes]:
    if len(data) < UDP_HEADER:
        raise HeaderError(f"truncated UDP header ({len(data)} bytes)")
    sport, dport, length = struct.unpack_from("!HHH", data, 0)
    if length < UDP_HEADER:
        raise HeaderError(f"bad UDP length {length}")
    return sport, dport, data[UDP_HEADER:length] if length <= len(data) else data[UDP_HEADER:]
