"""Minimal pcap(4) file reader and writer.

The paper collects traces with tcpdump and stores header-only traces "using
the same format as the tcpdump program".  This module implements that format
(the classic microsecond-resolution pcap container) so synthetic traces can
be written to disk, snapped to headers only, and replayed — without libpcap.

Only ``LINKTYPE_RAW`` (IPv4 directly in the capture, value 101) and
``LINKTYPE_NULL``/``LINKTYPE_EN10MB`` unwrapping are supported; the trace
generator writes LINKTYPE_RAW.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, Iterator, List, NamedTuple, Union

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
PCAP_VERSION = (2, 4)

LINKTYPE_NULL = 0
LINKTYPE_EN10MB = 1
LINKTYPE_RAW = 101

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_ETHERNET_HEADER_LEN = 14


class PcapError(ValueError):
    """Raised on malformed pcap input."""


class PcapRecord(NamedTuple):
    """One captured packet: timestamp (float seconds), original length on
    the wire, and the (possibly snapped) captured bytes."""

    timestamp: float
    orig_len: int
    data: bytes


class PcapWriter:
    """Stream pcap records to a binary file object.

    ``snaplen`` both declares the capture length in the global header and
    truncates written records — passing e.g. 64 stores layer-3/4 headers
    only, the paper's space-saving trick for long traces.
    """

    def __init__(
        self,
        fileobj: BinaryIO,
        linktype: int = LINKTYPE_RAW,
        snaplen: int = 65535,
    ) -> None:
        if snaplen <= 0:
            raise ValueError(f"snaplen must be positive: {snaplen}")
        self._file = fileobj
        self.linktype = linktype
        self.snaplen = snaplen
        self._file.write(
            _GLOBAL_HEADER.pack(
                PCAP_MAGIC, PCAP_VERSION[0], PCAP_VERSION[1], 0, 0, snaplen, linktype
            )
        )
        self.count = 0

    def write(self, timestamp: float, data: bytes, orig_len: int = -1) -> None:
        """Append one record, truncating to the snaplen."""
        if orig_len < 0:
            orig_len = len(data)
        captured = data[: self.snaplen]
        seconds = int(timestamp)
        micros = int(round((timestamp - seconds) * 1_000_000))
        if micros >= 1_000_000:  # guard against float rounding to 1.0s
            seconds += 1
            micros -= 1_000_000
        self._file.write(_RECORD_HEADER.pack(seconds, micros, len(captured), orig_len))
        self._file.write(captured)
        self.count += 1


class PcapReader:
    """Iterate :class:`PcapRecord` objects from a pcap file object.

    Handles both native and byte-swapped magic, and strips Ethernet framing
    when the link type is EN10MB so callers always receive IP packets.
    """

    def __init__(self, fileobj: BinaryIO) -> None:
        self._file = fileobj
        header = fileobj.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise PcapError("truncated pcap global header")
        magic = struct.unpack("<I", header[:4])[0]
        if magic == PCAP_MAGIC:
            self._fmt = "<"
        elif magic == PCAP_MAGIC_SWAPPED:
            self._fmt = ">"
        else:
            raise PcapError(f"bad pcap magic {magic:#x}")
        fields = struct.unpack(self._fmt + "IHHiIII", header)
        self.snaplen = fields[5]
        self.linktype = fields[6]

    def __iter__(self) -> Iterator[PcapRecord]:
        record = struct.Struct(self._fmt + "IIII")
        while True:
            head = self._file.read(record.size)
            if not head:
                return
            if len(head) < record.size:
                raise PcapError("truncated pcap record header")
            seconds, micros, cap_len, orig_len = record.unpack(head)
            data = self._file.read(cap_len)
            if len(data) < cap_len:
                raise PcapError("truncated pcap record body")
            if self.linktype == LINKTYPE_EN10MB:
                data = data[_ETHERNET_HEADER_LEN:]
            elif self.linktype == LINKTYPE_NULL:
                data = data[4:]
            yield PcapRecord(seconds + micros / 1_000_000, orig_len, data)


def write_pcap(
    path: str,
    records: Iterable[Union[PcapRecord, tuple]],
    linktype: int = LINKTYPE_RAW,
    snaplen: int = 65535,
) -> int:
    """Write an iterable of ``(timestamp, data)`` or :class:`PcapRecord` to
    ``path``; returns the number of records written."""
    with open(path, "wb") as fileobj:
        writer = PcapWriter(fileobj, linktype=linktype, snaplen=snaplen)
        for record in records:
            if isinstance(record, PcapRecord):
                writer.write(record.timestamp, record.data, record.orig_len)
            else:
                timestamp, data = record
                writer.write(timestamp, data)
        return writer.count


def read_pcap(path: str) -> List[PcapRecord]:
    """Read every record of a pcap file into memory."""
    return list(iter_pcap(path))


def iter_pcap(path: str) -> Iterator[PcapRecord]:
    """Lazily yield every record of a pcap file.

    Unlike :func:`read_pcap` this never materializes the capture as a
    list — one record is in memory at a time, so a multi-gigabyte trace
    can stream straight into a columnar
    :class:`~repro.net.table.PacketTable` without being held twice.
    The file stays open until the generator is exhausted or closed.
    """
    with open(path, "rb") as fileobj:
        for record in PcapReader(fileobj):
            yield record
