"""Packet-level substrate: addresses, headers, packets, pcap I/O and flows.

The paper's evaluation replays packet traces through filters at the edge of a
client network.  This subpackage provides everything needed to represent,
serialize and parse such traces without external dependencies (scapy is far
too slow for million-packet replays; see DESIGN.md, substitution table).
"""

from repro.net.inet import (
    IPPROTO_TCP,
    IPPROTO_UDP,
    format_ipv4,
    internet_checksum,
    parse_ipv4,
)
from repro.net.packet import Direction, Packet, SocketPair
from repro.net.headers import (
    IPv4Header,
    TCPFlags,
    TCPHeader,
    UDPHeader,
    decode_packet,
    encode_packet,
)
from repro.net.pcap import PcapReader, PcapWriter, iter_pcap, read_pcap, write_pcap
from repro.net.flows import ConnectionTable, FlowRecord, TCPState
from repro.net.table import HAVE_NUMPY, PacketTable, PacketView, as_table

__all__ = [
    "IPPROTO_TCP",
    "IPPROTO_UDP",
    "format_ipv4",
    "parse_ipv4",
    "internet_checksum",
    "Direction",
    "Packet",
    "SocketPair",
    "IPv4Header",
    "TCPFlags",
    "TCPHeader",
    "UDPHeader",
    "decode_packet",
    "encode_packet",
    "PcapReader",
    "PcapWriter",
    "iter_pcap",
    "read_pcap",
    "write_pcap",
    "ConnectionTable",
    "FlowRecord",
    "TCPState",
    "HAVE_NUMPY",
    "PacketTable",
    "PacketView",
    "as_table",
]
