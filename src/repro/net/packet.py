"""Packets, socket pairs and traffic direction.

The paper identifies a network connection by a *five-tuple socket pair*
``{protocol, source-address, source-port, destination-address,
destination-port}`` (section 3.2) and makes heavy use of the *inverse* socket
pair: for an outbound packet with pair ``sigma_out``, the corresponding
inbound packet carries ``sigma_in`` whose inverse equals ``sigma_out``.

``SocketPair`` here is a plain tuple subclass so that it hashes and unpacks
cheaply; million-packet replays spend most of their time constructing and
hashing these.
"""

from __future__ import annotations

import enum
from typing import NamedTuple, Optional

from repro.net.inet import IPPROTO_TCP, IPPROTO_UDP, PROTO_NAMES, format_ipv4


class Direction(enum.Enum):
    """Direction of a packet relative to the client network.

    The paper (section 3.3): "An outbound packet is a packet sent from a
    client network, while inbound packet is a packet received by a client
    network."
    """

    OUTBOUND = "outbound"
    INBOUND = "inbound"

    @property
    def opposite(self) -> "Direction":
        return Direction.INBOUND if self is Direction.OUTBOUND else Direction.OUTBOUND


class SocketPair(NamedTuple):
    """Five-tuple identifying a connection endpoint-to-endpoint.

    ``s = {TCP, A, x, B, y}``; its inverse ``s̄ = {TCP, B, y, A, x}``
    identifies the same connection seen from the other side.
    """

    protocol: int
    src_addr: int
    src_port: int
    dst_addr: int
    dst_port: int

    @property
    def inverse(self) -> "SocketPair":
        """The same connection viewed from the opposite direction."""
        return SocketPair(
            self.protocol, self.dst_addr, self.dst_port, self.src_addr, self.src_port
        )

    @property
    def canonical(self) -> "SocketPair":
        """A direction-independent form (the lexicographically smaller of
        the pair and its inverse) — useful as a connection-table key because
        ``s`` and ``s̄`` map to the same entry."""
        inv = self.inverse
        return self if self <= inv else inv

    @property
    def is_tcp(self) -> bool:
        return self.protocol == IPPROTO_TCP

    @property
    def is_udp(self) -> bool:
        return self.protocol == IPPROTO_UDP

    def describe(self) -> str:
        """Human-readable ``tcp 1.2.3.4:5 -> 6.7.8.9:10`` form."""
        name = PROTO_NAMES.get(self.protocol, str(self.protocol))
        return (
            f"{name} {format_ipv4(self.src_addr)}:{self.src_port}"
            f" -> {format_ipv4(self.dst_addr)}:{self.dst_port}"
        )


class Packet:
    """A single observed packet.

    Attributes mirror what the paper's filters consume: a timestamp, the
    five-tuple, TCP flags when applicable, the wire size in bytes, and the
    payload (which the *bitmap filter never reads* — only the analyzer of
    section 3 does, and only to establish ground truth).

    ``__slots__`` keeps per-packet overhead small; traces run to millions of
    packets.
    """

    __slots__ = ("timestamp", "pair", "flags", "size", "payload", "direction")

    def __init__(
        self,
        timestamp: float,
        pair: SocketPair,
        size: int,
        flags: int = 0,
        payload: bytes = b"",
        direction: Optional[Direction] = None,
    ) -> None:
        if size < 0:
            raise ValueError(f"negative packet size: {size}")
        self.timestamp = timestamp
        self.pair = pair
        self.flags = flags
        self.size = size
        self.payload = payload
        self.direction = direction

    # -- TCP flag helpers (bits defined in headers.TCPFlags) ---------------

    @property
    def is_syn(self) -> bool:
        """True for a SYN that is not a SYN-ACK (a connection *initiation*)."""
        return bool(self.flags & 0x02) and not bool(self.flags & 0x10)

    @property
    def is_synack(self) -> bool:
        return bool(self.flags & 0x02) and bool(self.flags & 0x10)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & 0x01)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & 0x04)

    @property
    def protocol(self) -> int:
        return self.pair.protocol

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = self.direction.value if self.direction else "?"
        return (
            f"Packet(t={self.timestamp:.6f}, {self.pair.describe()}, "
            f"size={self.size}, flags={self.flags:#04x}, {tag})"
        )


def classify_direction(pair: SocketPair, client_net: int, prefix_len: int) -> Direction:
    """Decide a packet's direction from its source address.

    A packet whose source lies inside the client network is outbound;
    everything else is inbound.  (The paper's traffic monitor sits on the
    link between the campus subnet and the Internet and sees both.)
    """
    from repro.net.inet import in_network

    if in_network(pair.src_addr, client_net, prefix_len):
        return Direction.OUTBOUND
    return Direction.INBOUND
