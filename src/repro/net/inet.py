"""Internet primitives: IPv4 address helpers, protocol numbers, checksums.

Addresses are represented as plain ``int`` (host byte order) throughout the
library.  Integers hash and compare faster than strings or tuples, which
matters when a replay pushes millions of packets through a filter.
"""

from __future__ import annotations

import struct

# IANA assigned protocol numbers.  The traffic analyzer (paper section 3.2)
# "focuses only on TCP and UDP traffic for that these two are the major data
# transmission protocols used over Internet".
IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17

PROTO_NAMES = {
    IPPROTO_ICMP: "icmp",
    IPPROTO_TCP: "tcp",
    IPPROTO_UDP: "udp",
}

#: Maximum value of a 16-bit port number.
MAX_PORT = 0xFFFF

#: Maximum value of an IPv4 address as an integer.
MAX_IPV4 = 0xFFFFFFFF


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad notation into an integer address.

    >>> hex(parse_ipv4("10.0.0.1"))
    '0xa000001'
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(addr: int) -> str:
    """Render an integer address in dotted-quad notation.

    >>> format_ipv4(0x0A000001)
    '10.0.0.1'
    """
    if not 0 <= addr <= MAX_IPV4:
        raise ValueError(f"address out of range: {addr}")
    return ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def ipv4_network(addr: int, prefix_len: int) -> int:
    """Return the network part of ``addr`` under a ``prefix_len`` mask."""
    if not 0 <= prefix_len <= 32:
        raise ValueError(f"prefix length out of range: {prefix_len}")
    if prefix_len == 0:
        return 0
    mask = (MAX_IPV4 << (32 - prefix_len)) & MAX_IPV4
    return addr & mask


def in_network(addr: int, network: int, prefix_len: int) -> bool:
    """True when ``addr`` falls inside ``network/prefix_len``."""
    return ipv4_network(addr, prefix_len) == ipv4_network(network, prefix_len)


def internet_checksum(data: bytes, initial: int = 0) -> int:
    """RFC 1071 Internet checksum (one's-complement sum of 16-bit words).

    Used for IPv4 header checksums and the TCP/UDP pseudo-header checksums.
    The analyzer discards packets with bad checksums, exactly as the paper's
    analyzer does ("Packets with incorrect checksum values are not considered
    for examination").
    """
    total = initial
    length = len(data)
    # Sum 16-bit big-endian words.
    for (word,) in struct.iter_unpack("!H", data[: length & ~1]):
        total += word
    if length & 1:
        total += data[-1] << 8
    # Fold carries.
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pseudo_header(src: int, dst: int, proto: int, length: int) -> bytes:
    """Build the IPv4 pseudo-header used in TCP/UDP checksum computation."""
    return struct.pack("!IIBBH", src, dst, 0, proto, length)


def is_private(addr: int) -> bool:
    """True for RFC 1918 private address space."""
    return (
        in_network(addr, parse_ipv4("10.0.0.0"), 8)
        or in_network(addr, parse_ipv4("172.16.0.0"), 12)
        or in_network(addr, parse_ipv4("192.168.0.0"), 16)
    )
