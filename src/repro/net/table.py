"""Columnar packet plane: the struct-of-arrays trace representation.

A million-packet replay through :class:`~repro.net.packet.Packet` objects
pays a Python object header, a :class:`~repro.net.packet.SocketPair`
tuple and a payload reference *per packet* — and then the batched engine
re-derives parallel arrays from them on every run.  :class:`PacketTable`
makes the struct-of-arrays form native: one ``array`` column per scalar
field (timestamps, sizes, flags, direction) plus *interned* socket pairs
and payloads, so per-packet storage is a handful of machine words and
per-flow work (hashing, shard routing) happens once per distinct flow
instead of once per packet — the same header-only economy that in-packet
Bloom-filter designs get from keeping all per-packet state in a few
words.

Representations convert losslessly in both directions
(:meth:`PacketTable.from_packets` / :meth:`PacketTable.to_packets`), and
every consumer of the replay engine accepts either.  Rows can also be
*viewed* without materialization: :class:`PacketView` is a zero-allocation
cursor over one row that satisfies the :class:`Packet` field protocol
(``timestamp``/``pair``/``size``/``flags``/``payload``/``direction``), so
the sequential backend and the blocklist see "packets" that are really
column reads.

An optional numpy acceleration path speeds up the bulk column operations
(selection, per-lane partitioning, direction scans) when numpy is
importable; it is bit-identical to the stdlib path — both are pure
integer/data movement — and the test suite runs both.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.net.packet import Direction, Packet, SocketPair

try:  # pragma: no cover - exercised via the CI numpy matrix
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: True when the numpy acceleration path is available.  Tests flip the
#: module-level ``_use_numpy`` flag to force the stdlib path and assert
#: bit-identical results.
HAVE_NUMPY = _np is not None
_use_numpy = HAVE_NUMPY

_MAX_FLAGS = 1 << 32
_EMPTY = b""

#: ``seen_directions`` bits: the flow appeared outbound / inbound.
SEEN_OUTBOUND = 1
SEEN_INBOUND = 2


def _np_enabled() -> bool:
    return _use_numpy and _np is not None


def _column_dtype(column) -> str:
    """A column's element typecode, whether it is an ``array`` or a
    zero-copy ``memoryview`` over an external buffer (which has
    ``format`` instead of ``typecode``)."""
    typecode = getattr(column, "typecode", None)
    return typecode if typecode is not None else column.format


class PacketTable:
    """A packet trace as parallel columns with interned flows.

    Columns (all equal length, one entry per packet):

    * ``timestamps`` — ``array('d')``, seconds;
    * ``sizes`` — ``array('q')``, wire bytes;
    * ``flags`` — ``array('I')``, TCP flag bits (0 for UDP);
    * ``outbound`` — ``array('b')``, 1 outbound / 0 inbound;
    * ``pair_ids`` — ``array('l')`` into ``pairs`` (interned
      :class:`SocketPair` pool);
    * ``payload_ids`` — ``array('l')`` into ``payloads`` (interned
      ``bytes`` pool; the empty payload is entry 0).

    Sub-tables from :meth:`slice` / :meth:`select` share the parent's
    pools (ids stay valid), so partitioning a table into lanes copies
    only the fixed-width columns.
    """

    __slots__ = (
        "timestamps", "sizes", "flags", "outbound", "pair_ids",
        "payload_ids", "pairs", "payloads", "_pair_index", "_payload_index",
    )

    #: Column order and native typecodes — the canonical schema shared by
    #: the wire codec and the shared-memory transport.
    COLUMNS: Tuple[Tuple[str, str], ...] = (
        ("timestamps", "d"), ("sizes", "q"), ("flags", "I"),
        ("outbound", "b"), ("pair_ids", "l"), ("payload_ids", "l"),
    )
    COLUMN_TYPECODES: Dict[str, str] = dict(COLUMNS)

    def __init__(self) -> None:
        self.timestamps = array("d")
        self.sizes = array("q")
        self.flags = array("I")
        self.outbound = array("b")
        self.pair_ids = array("l")
        self.payload_ids = array("l")
        self.pairs: List[SocketPair] = []
        self.payloads: List[bytes] = [_EMPTY]
        self._pair_index: Optional[Dict[SocketPair, int]] = {}
        self._payload_index: Optional[Dict[bytes, int]] = {_EMPTY: 0}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _pair_id(self, pair: SocketPair) -> int:
        index = self._ensure_pair_index()
        pid = index.get(pair)
        if pid is None:
            pid = len(self.pairs)
            self.pairs.append(pair)
            index[pair] = pid
        return pid

    def _payload_id(self, payload: bytes) -> int:
        if not payload:
            return 0
        index = self._ensure_payload_index()
        pid = index.get(payload)
        if pid is None:
            pid = len(self.payloads)
            self.payloads.append(payload)
            index[payload] = pid
        return pid

    def _ensure_pair_index(self) -> Dict[SocketPair, int]:
        if self._pair_index is None:
            self._pair_index = {
                pair: pid for pid, pair in enumerate(self.pairs)
            }
        return self._pair_index

    def _ensure_payload_index(self) -> Dict[bytes, int]:
        if self._payload_index is None:
            self._payload_index = {
                payload: pid for pid, payload in enumerate(self.payloads)
            }
        return self._payload_index

    def append_row(
        self,
        timestamp: float,
        pair: SocketPair,
        size: int,
        flags: int,
        payload: bytes,
        outbound: int,
    ) -> None:
        """Append one packet as raw fields (``outbound``: 1 out / 0 in)."""
        if size < 0:
            raise ValueError(f"negative packet size: {size}")
        if not 0 <= flags < _MAX_FLAGS:
            raise ValueError(f"flags out of 32-bit range: {flags}")
        self.timestamps.append(timestamp)
        self.sizes.append(size)
        self.flags.append(flags)
        self.outbound.append(1 if outbound else 0)
        self.pair_ids.append(self._pair_id(pair))
        self.payload_ids.append(self._payload_id(payload))

    def append_packet(self, packet: Packet) -> None:
        """Append one :class:`Packet` (its direction must be set)."""
        direction = packet.direction
        if direction is None:
            raise ValueError("packet has no direction set")
        self.append_row(
            packet.timestamp,
            packet.pair,
            packet.size,
            packet.flags,
            packet.payload,
            direction is Direction.OUTBOUND,
        )

    @classmethod
    def from_packets(
        cls,
        packets: Iterable[Packet],
        payload_limit: Optional[int] = None,
    ) -> "PacketTable":
        """Columnarize a packet iterable.

        Every field round-trips exactly through :meth:`to_packets`.
        ``payload_limit`` truncates stored payloads (the pcap snaplen
        trick for header-only tables); ``None`` keeps them verbatim.
        Raises :class:`ValueError` on a packet without a direction —
        a table row *is* its direction bit, so there is no column for
        "unclassified".
        """
        if payload_limit is not None and payload_limit < 0:
            raise ValueError(f"payload_limit must be >= 0: {payload_limit}")
        table = cls()
        outbound_enum = Direction.OUTBOUND
        append_row = table.append_row
        for packet in packets:
            direction = packet.direction
            if direction is None:
                raise ValueError("packet has no direction set")
            payload = packet.payload
            if payload_limit is not None:
                payload = payload[:payload_limit]
            append_row(
                packet.timestamp,
                packet.pair,
                packet.size,
                packet.flags,
                payload,
                direction is outbound_enum,
            )
        return table

    @classmethod
    def from_pcap(
        cls,
        path: str,
        network: int,
        prefix_len: int,
        payload_limit: Optional[int] = None,
    ) -> "PacketTable":
        """Stream a pcap capture straight into a table.

        Records are read lazily (:func:`~repro.net.pcap.iter_pcap`),
        decoded one at a time and appended as columnar rows, so the
        capture is never held in memory twice — neither as a record list
        nor as ``Packet`` objects.  ``network``/``prefix_len`` classify
        direction the same way the CLI does: a source address inside the
        client CIDR makes the row outbound.  Undecodable records are
        skipped; ``payload_limit`` truncates stored payloads (pcap files
        snapped to headers already arrive truncated).
        """
        from repro.net.headers import HeaderError, decode_packet
        from repro.net.inet import in_network
        from repro.net.pcap import iter_pcap

        table = cls()
        append_row = table.append_row
        for record in iter_pcap(path):
            try:
                packet = decode_packet(record.data, record.timestamp)
            except HeaderError:
                continue
            payload = packet.payload
            if payload_limit is not None:
                payload = payload[:payload_limit]
            append_row(
                packet.timestamp,
                packet.pair,
                packet.size,
                packet.flags,
                payload,
                in_network(packet.pair.src_addr, network, prefix_len),
            )
        return table

    def extend(self, other: "PacketTable") -> "PacketTable":
        """Append every row of ``other`` (ids are re-interned)."""
        if not len(other):
            return self
        remap_pair = array(
            "l", (self._pair_id(pair) for pair in other.pairs)
        )
        remap_payload = array(
            "l", (self._payload_id(payload) for payload in other.payloads)
        )
        self.timestamps.extend(other.timestamps)
        self.sizes.extend(other.sizes)
        self.flags.extend(other.flags)
        self.outbound.extend(other.outbound)
        self.pair_ids.extend(remap_pair[pid] for pid in other.pair_ids)
        self.payload_ids.extend(
            remap_payload[pid] for pid in other.payload_ids
        )
        return self

    # ------------------------------------------------------------------
    # Shape / access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.timestamps)

    @property
    def first_timestamp(self) -> Optional[float]:
        return self.timestamps[0] if self.timestamps else None

    @property
    def last_timestamp(self) -> Optional[float]:
        return self.timestamps[-1] if self.timestamps else None

    def direction(self, position: int) -> Direction:
        return Direction.OUTBOUND if self.outbound[position] else Direction.INBOUND

    def pair(self, position: int) -> SocketPair:
        return self.pairs[self.pair_ids[position]]

    def packet(self, position: int) -> Packet:
        """Materialize one row as a fresh :class:`Packet`."""
        return Packet(
            timestamp=self.timestamps[position],
            pair=self.pairs[self.pair_ids[position]],
            size=self.sizes[position],
            flags=self.flags[position],
            payload=self.payloads[self.payload_ids[position]],
            direction=self.direction(position),
        )

    def to_packets(self) -> List[Packet]:
        """Materialize the whole table as :class:`Packet` objects."""
        return [self.packet(position) for position in range(len(self))]

    def __iter__(self) -> Iterator[Packet]:
        """Iterate *fresh* :class:`Packet` objects (safe to retain)."""
        for position in range(len(self)):
            yield self.packet(position)

    def view(self, position: int = 0) -> "PacketView":
        """A repositionable zero-allocation row cursor."""
        return PacketView(self, position)

    def iter_views(self) -> Iterator["PacketView"]:
        """Iterate every row through ONE reused :class:`PacketView`.

        Zero allocations per row: the same cursor object is yielded each
        time, re-seeked.  Callers must consume fields immediately and
        never retain the yielded view (the sequential replay stages read
        fields and move on, which is exactly this contract).
        """
        view = PacketView(self, 0)
        seek = view.seek
        for position in range(len(self)):
            seek(position)
            yield view

    # ------------------------------------------------------------------
    # Column slicing (the parallel backend's shard partitioner)
    # ------------------------------------------------------------------

    def _shallow(self) -> "PacketTable":
        """An empty table sharing this table's pools (ids stay valid)."""
        child = PacketTable.__new__(PacketTable)
        child.pairs = self.pairs
        child.payloads = self.payloads
        child._pair_index = None
        child._payload_index = None
        return child

    def spawn(self) -> "PacketTable":
        """An *empty* table sharing this table's pools.

        The streaming generator emits its trace as a sequence of spawned
        chunks over one growing pool: every chunk's ``pair_ids`` index the
        same interned flow list, so consumers can carry per-flow state
        (hash indices, shard routes) across chunks without re-interning.
        """
        child = self._shallow()
        child.timestamps = array("d")
        child.sizes = array("q")
        child.flags = array("I")
        child.outbound = array("b")
        child.pair_ids = array("l")
        child.payload_ids = array("l")
        return child

    def slice(self, start: int, stop: int) -> "PacketTable":
        """Rows ``[start, stop)`` as a pool-sharing sub-table."""
        child = self._shallow()
        child.timestamps = self.timestamps[start:stop]
        child.sizes = self.sizes[start:stop]
        child.flags = self.flags[start:stop]
        child.outbound = self.outbound[start:stop]
        child.pair_ids = self.pair_ids[start:stop]
        child.payload_ids = self.payload_ids[start:stop]
        return child

    def select(self, positions: Sequence[int]) -> "PacketTable":
        """The given rows (in order) as a pool-sharing sub-table."""
        child = self._shallow()
        if _np_enabled() and len(positions) > 64:
            take = _np.asarray(positions, dtype=_np.int64)
            for name, typecode in self.COLUMNS:
                column = getattr(self, name)
                picked = _np.frombuffer(column, dtype=_column_dtype(column))[take]
                setattr(child, name, array(typecode, picked.tobytes()))
        else:
            for name, typecode in self.COLUMNS:
                column = getattr(self, name)
                setattr(
                    child, name,
                    array(typecode, [column[i] for i in positions]),
                )
        return child

    # ------------------------------------------------------------------
    # Buffer export / zero-copy views (the shared-memory transport)
    # ------------------------------------------------------------------

    def column_buffers(self) -> List[Tuple[str, str, memoryview]]:
        """Every column as ``(name, typecode, byte view)``.

        The views alias the live column storage — they are valid only as
        long as the table is not mutated, and the caller must release
        them (or let them go out of scope) before appending.  This is the
        publish half of the zero-copy transport: the parent copies these
        bytes into shared memory once, instead of pickling the table.
        """
        return [
            (name, typecode, memoryview(getattr(self, name)).cast("B"))
            for name, typecode in self.COLUMNS
        ]

    @classmethod
    def from_column_buffers(
        cls,
        columns: Dict[str, memoryview],
        pairs: List[SocketPair],
        payloads: List[bytes],
    ) -> "PacketTable":
        """A *read-only view* table over external column buffers.

        ``columns`` maps each schema column name to a byte-level buffer
        (e.g. a ``multiprocessing.shared_memory`` slice); each is cast to
        its native typecode in place — no copy.  The result supports the
        whole read path (iteration, views, ``slice``/``select``, the
        fused fast path) but not ``append_row``: memoryviews have no
        ``append``.  Callers own the backing buffer's lifetime and must
        drop the table (and any sub-tables) before closing it.
        """
        table = cls.__new__(cls)
        rows = None
        for name, typecode in cls.COLUMNS:
            try:
                raw = columns[name]
            except KeyError:
                raise ValueError(f"missing column buffer: {name}") from None
            view = memoryview(raw).cast("B").cast(typecode)
            if rows is None:
                rows = len(view)
            elif len(view) != rows:
                raise ValueError(
                    f"column {name} has {len(view)} rows, expected {rows}"
                )
            setattr(table, name, view)
        table.pairs = pairs
        table.payloads = payloads
        table._pair_index = None
        table._payload_index = None
        return table

    def materialize(self) -> "PacketTable":
        """A mutable deep copy of the columns (pools still shared).

        Turns a zero-copy view table back into an ordinary ``array``
        table so it outlives its backing buffer.
        """
        child = self._shallow()
        for name, typecode in self.COLUMNS:
            setattr(child, name, array(typecode, getattr(self, name)))
        return child

    # ------------------------------------------------------------------
    # Flow scans (consumed by the fused replay loop / shard router)
    # ------------------------------------------------------------------

    def seen_directions(self) -> bytearray:
        """Per-interned-pair direction occupancy bits.

        ``result[pid] & SEEN_OUTBOUND`` / ``& SEEN_INBOUND`` say whether
        flow ``pid`` appears in that direction anywhere in the table —
        what the batched engine needs to hash each flow at most once per
        direction instead of once per packet.
        """
        seen = bytearray(len(self.pairs))
        if not len(self):
            return seen
        if _np_enabled():
            pair_ids = _np.frombuffer(
                self.pair_ids, dtype=_column_dtype(self.pair_ids)
            )
            outbound = _np.frombuffer(self.outbound, dtype=_np.int8)
            out_mask = outbound != 0
            for mask, bit in ((out_mask, SEEN_OUTBOUND), (~out_mask, SEEN_INBOUND)):
                hit = pair_ids[mask]
                if hit.size:
                    for pid in _np.unique(hit):
                        seen[pid] |= bit
            return seen
        for pid, is_out in zip(self.pair_ids, self.outbound):
            seen[pid] |= SEEN_OUTBOUND if is_out else SEEN_INBOUND
        return seen

    def lane_positions(self, lane_by_row: Sequence[int], lanes: int) -> List[array]:
        """Group row positions by a per-row lane id (−1 = default lane).

        Returns ``lanes + 1`` position arrays; the last one holds the
        −1 rows.  The numpy path and the stdlib loop produce identical
        arrays — grouping preserves row order either way.
        """
        groups = [array("l") for _ in range(lanes + 1)]
        if _np_enabled() and len(self) > 64:
            rows = _np.asarray(lane_by_row, dtype=_np.int64)
            order = _np.arange(len(rows), dtype=_np.int64)
            for lane in range(lanes):
                picked = order[rows == lane]
                if picked.size:
                    groups[lane] = array("l", picked.tobytes())
            picked = order[rows < 0]
            if picked.size:
                groups[lanes] = array("l", picked.tobytes())
            return groups
        for position, lane in enumerate(lane_by_row):
            groups[lane if lane >= 0 else lanes].append(position)
        return groups

    # ------------------------------------------------------------------
    # Pickling (lane tables cross process boundaries)
    # ------------------------------------------------------------------

    def __getstate__(self) -> Tuple:
        # View tables hold memoryviews over external buffers; those don't
        # pickle, so materialize them into arrays for the wire.
        columns = tuple(
            column if isinstance(column, array) else array(typecode, column)
            for (name, typecode), column in zip(
                self.COLUMNS,
                (self.timestamps, self.sizes, self.flags, self.outbound,
                 self.pair_ids, self.payload_ids),
            )
        )
        return columns + (self.pairs, self.payloads)

    def __setstate__(self, state: Tuple) -> None:
        (self.timestamps, self.sizes, self.flags, self.outbound,
         self.pair_ids, self.payload_ids, self.pairs, self.payloads) = state
        self._pair_index = None
        self._payload_index = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PacketTable({len(self)} packets, {len(self.pairs)} flows, "
            f"{len(self.payloads)} payloads)"
        )


class PacketView:
    """A zero-allocation cursor over one :class:`PacketTable` row.

    Exposes the :class:`Packet` field protocol (``timestamp``, ``pair``,
    ``size``, ``flags``, ``payload``, ``direction`` plus the TCP flag
    helpers), reading straight from the columns.  One view is reused for
    a whole traversal (:meth:`PacketTable.iter_views`); consumers must
    not retain it across rows.  The :class:`SocketPair` it hands out is
    the real interned object, so keying dicts on ``view.pair`` is safe.
    """

    __slots__ = ("table", "position")

    def __init__(self, table: PacketTable, position: int = 0) -> None:
        self.table = table
        self.position = position

    def seek(self, position: int) -> "PacketView":
        self.position = position
        return self

    @property
    def timestamp(self) -> float:
        return self.table.timestamps[self.position]

    @property
    def pair(self) -> SocketPair:
        table = self.table
        return table.pairs[table.pair_ids[self.position]]

    @property
    def size(self) -> int:
        return self.table.sizes[self.position]

    @property
    def flags(self) -> int:
        return self.table.flags[self.position]

    @property
    def payload(self) -> bytes:
        table = self.table
        return table.payloads[table.payload_ids[self.position]]

    @property
    def direction(self) -> Direction:
        return (
            Direction.OUTBOUND
            if self.table.outbound[self.position]
            else Direction.INBOUND
        )

    @property
    def protocol(self) -> int:
        return self.pair.protocol

    @property
    def is_syn(self) -> bool:
        flags = self.flags
        return bool(flags & 0x02) and not bool(flags & 0x10)

    @property
    def is_synack(self) -> bool:
        flags = self.flags
        return bool(flags & 0x02) and bool(flags & 0x10)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & 0x01)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & 0x04)

    def to_packet(self) -> Packet:
        """Materialize the current row (when retention *is* wanted)."""
        return self.table.packet(self.position)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PacketView(row {self.position} of {self.table!r})"


def as_table(packets) -> PacketTable:
    """Coerce any accepted trace representation to one PacketTable.

    Accepts a :class:`PacketTable` (returned as-is), an iterable of
    tables (concatenated), or an iterable of :class:`Packet` objects.
    """
    if isinstance(packets, PacketTable):
        return packets
    if isinstance(packets, (list, tuple)) and packets and isinstance(
        packets[0], PacketTable
    ):
        merged = packets[0]
        for chunk in packets[1:]:
            merged.extend(chunk)
        return merged
    iterator = iter(packets)
    try:
        first = next(iterator)
    except StopIteration:
        return PacketTable()
    if isinstance(first, PacketTable):
        merged = first
        for chunk in iterator:
            merged.extend(chunk)
        return merged
    table = PacketTable()
    table.append_packet(first)
    for packet in iterator:
        table.append_packet(packet)
    return table
