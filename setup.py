"""Shim for environments whose setuptools lacks PEP 660 editable-wheel
support (no `wheel` package offline); `pip install -e .` falls back here."""

from setuptools import setup

setup()
