#!/usr/bin/env python
"""Adversarial swarm campaign: evasion frontier, hole-punch matrix, retune.

Three closed-loop engagements between the :mod:`repro.swarm` plane and
the filter family, every run fixed-seed and bit-reproducible (the whole
campaign executes twice and the reports must match verbatim,
fingerprints included):

**evasion frontier** — for each filter (bitmap, counting, SPI, chain),
the same swarm once with evasion off and once with the full tactic
cycle, at ``P_d = 0.9`` so each fresh admission trial has a nonzero
coin.  Evasion must measurably raise penetration on the bitmap:
more admitted attempts and a higher fraction of peers penetrated.

**hole-punch matrix** — bitmap at ``P_d = 1`` under ``STRICT`` versus
``HOLE_PUNCHING`` field modes.  The punch (outbound rendezvous probe,
then inbound connect from a *different* ephemeral port) must succeed
only when the asymmetric field mode is enabled.

**retune recovery** — the swarm against a bitmap that starts wide open
(``P_d = 0``), with a :class:`~repro.swarm.retune.RetuneLoop` steering
``P_d`` toward an uplink target through a **live FilterService control
socket** (`ControlClient`), versus a no-retune baseline.  The retuned
run must re-establish the bound with finite recovery time; the baseline
must not.

Modes::

    PYTHONPATH=src python benchmarks/bench_swarm.py           # writes BENCH_swarm.json
    PYTHONPATH=src python benchmarks/bench_swarm.py --quick   # CI smoke, no write
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

FILTER_KINDS = ("bitmap", "counting", "spi", "chain")
FRONTIER_PD = 0.9
RETUNE_TARGET_MBPS = 0.8
RETUNE_GAIN = 0.4
RETUNE_INTERVAL = 5.0


def build_filter(kind: str, pd: float, hole_punching: bool = False,
                 size_bits: int = 14):
    """One defender plus the drop controller a retune loop would steer."""
    from repro.core.bitmap_filter import BitmapFilterConfig, FieldMode
    from repro.core.dropper import StaticDropPolicy
    from repro.filters.bitmap import BitmapPacketFilter
    from repro.filters.chain import FilterChain
    from repro.filters.counting import CountingBitmapFilter
    from repro.filters.policy import DropController
    from repro.filters.spi import SPIFilter

    controller = DropController(StaticDropPolicy(pd))
    config = BitmapFilterConfig(
        size=2 ** size_bits, vectors=4, hashes=3, rotate_interval=5.0,
        field_mode=FieldMode.HOLE_PUNCHING if hole_punching
        else FieldMode.STRICT,
    )
    if kind == "bitmap":
        return BitmapPacketFilter(config, controller), controller
    if kind == "counting":
        return CountingBitmapFilter(config, controller), controller
    if kind == "spi":
        return SPIFilter(idle_timeout=240.0, drop_controller=controller), controller
    spi = SPIFilter(idle_timeout=240.0,
                    drop_controller=DropController.never_drop())
    return FilterChain([spi, BitmapPacketFilter(config, controller)]), controller


def swarm_config(args, evasion_on: bool):
    from repro.swarm import EvasionPolicy, SwarmConfig

    return SwarmConfig(
        peers=args.peers,
        clients=args.clients,
        duration=args.duration,
        seed=args.seed,
        evasion=EvasionPolicy() if evasion_on else EvasionPolicy.off(),
    )


def run_swarm(packet_filter, config, retune=None):
    from repro.swarm import SwarmSimulator

    return SwarmSimulator(packet_filter, config, retune=retune).run()


def result_row(result) -> dict:
    return {
        "attempts": result.attempts_total,
        "admitted": result.attempts_admitted,
        "refused": result.attempts_refused,
        "penetration_probability": round(result.penetration_probability, 6),
        "peer_penetration_rate": round(result.peer_penetration_rate, 6),
        "peers_penetrated": result.peers_penetrated,
        "tactic_successes": dict(sorted(result.tactic_successes.items())),
        "reverse_connections": result.reverse_connections,
        "swarm_upload_bytes": result.swarm_upload_bytes,
        "background_refusal_rate": round(result.background_refusal_rate, 6),
        "evasion_onset": result.evasion_onset,
        "fingerprint": result.replay.fingerprint,
    }


def campaign(args) -> dict:
    """One full pass over the three engagements (run twice by main)."""
    from repro.core.autotune import TargetRateController
    from repro.swarm import (
        ControlApplier,
        RetuneLoop,
        TACTIC_HOLE_PUNCH,
        launch_control_service,
    )

    report = {"frontier": [], "hole_punch": {}, "retune": {}}

    # 1. Evasion-on vs evasion-off frontier, per filter kind.
    for kind in FILTER_KINDS:
        row = {"filter": kind}
        for label, evasion_on in (("evasion_off", False), ("evasion_on", True)):
            packet_filter, _ = build_filter(kind, FRONTIER_PD)
            result = run_swarm(packet_filter, swarm_config(args, evasion_on))
            row[label] = result_row(result)
        report["frontier"].append(row)

    # 2. Hole-punch matrix: strict vs asymmetric fields at P_d = 1.
    for mode, hole_punching in (("strict", False), ("hole_punching", True)):
        packet_filter, _ = build_filter("bitmap", 1.0,
                                        hole_punching=hole_punching)
        result = run_swarm(packet_filter, swarm_config(args, True))
        row = result_row(result)
        row["hole_punch_successes"] = result.tactic_successes.get(
            TACTIC_HOLE_PUNCH, 0
        )
        row["hole_punch_probes"] = result.hole_punch_probes
        report["hole_punch"][mode] = row

    # 3. Retune recovery through the live control plane vs no retune.
    retune_duration = max(args.duration, args.retune_duration)
    for label, with_retune in (("baseline", False), ("retuned", True)):
        config = swarm_config(args, True)
        config.duration = retune_duration
        packet_filter, controller = build_filter("bitmap", 0.0)
        if with_retune:
            sock = os.path.join(
                tempfile.mkdtemp(prefix="bench-swarm-"), "control.sock"
            )
            with launch_control_service(packet_filter, "unix:" + sock) as handle:
                loop = RetuneLoop(
                    TargetRateController.mbps(RETUNE_TARGET_MBPS,
                                              gain=RETUNE_GAIN),
                    ControlApplier(handle.client()),
                    interval=RETUNE_INTERVAL,
                )
                result = run_swarm(packet_filter, config, retune=loop)
            row = result_row(result)
            row["recovery_time"] = result.recovery_time
            row["retune_probes"] = len(result.retune_log)
            row["final_pd"] = round(loop.controller.current_probability, 6)
        else:
            result = run_swarm(packet_filter, config)
            row = result_row(result)
        window = [mbps for t, mbps in result.uplink_mbps
                  if t >= retune_duration * 0.6]
        row["late_uplink_mbps"] = round(
            sum(window) / len(window) if window else 0.0, 6
        )
        report["retune"][label] = row
    report["retune"]["target_mbps"] = RETUNE_TARGET_MBPS
    return report


def sanity(report: dict) -> list:
    """The acceptance criteria, as concrete checks; returns failures."""
    failures = []
    bitmap = next(r for r in report["frontier"] if r["filter"] == "bitmap")
    on, off = bitmap["evasion_on"], bitmap["evasion_off"]
    if not (on["admitted"] > off["admitted"]
            and on["peer_penetration_rate"] > off["peer_penetration_rate"]):
        failures.append(
            "evasion did not raise bitmap penetration: "
            f"admitted {on['admitted']} vs {off['admitted']}, peer rate "
            f"{on['peer_penetration_rate']} vs {off['peer_penetration_rate']}"
        )
    strict = report["hole_punch"]["strict"]
    punched = report["hole_punch"]["hole_punching"]
    if strict["hole_punch_successes"] != 0:
        failures.append(
            "hole punch succeeded under STRICT fields: "
            f"{strict['hole_punch_successes']}"
        )
    if punched["hole_punch_successes"] <= 0:
        failures.append("hole punch never succeeded under HOLE_PUNCHING")
    retuned = report["retune"]["retuned"]
    baseline = report["retune"]["baseline"]
    if retuned.get("recovery_time") is None:
        failures.append("retune never re-established the upload bound")
    if not retuned["late_uplink_mbps"] < baseline["late_uplink_mbps"]:
        failures.append(
            "retuned late uplink not below baseline: "
            f"{retuned['late_uplink_mbps']} vs {baseline['late_uplink_mbps']}"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--peers", type=int, default=16)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--duration", type=float, default=90.0,
                        help="frontier / hole-punch engagement seconds")
    parser.add_argument("--retune-duration", type=float, default=240.0,
                        help="retune engagement seconds (needs room for "
                             "overshoot, clamp, decay, recovery)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_swarm.json")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: small swarm, short engagements, "
                             "no file write; sanity + determinism still "
                             "gate the exit code")
    args = parser.parse_args(argv)

    if args.quick:
        args.peers = min(args.peers, 8)
        args.clients = min(args.clients, 3)
        args.duration = min(args.duration, 60.0)
        args.retune_duration = min(args.retune_duration, 180.0)

    started = time.perf_counter()
    first = campaign(args)
    first_s = time.perf_counter() - started
    second = campaign(args)
    total_s = time.perf_counter() - started

    first_json = json.dumps(first, indent=2, sort_keys=True)
    if first_json != json.dumps(second, indent=2, sort_keys=True):
        print("FAIL: two same-seed campaigns disagree (determinism broken)",
              file=sys.stderr)
        return 1

    print(f"{'filter':>9} {'evasion':>8} {'attempts':>9} {'admitted':>9} "
          f"{'peers pen.':>10} {'upload MB':>10}")
    for row in first["frontier"]:
        for label in ("evasion_off", "evasion_on"):
            cell = row[label]
            print(f"{row['filter']:>9} {label[8:]:>8} {cell['attempts']:>9} "
                  f"{cell['admitted']:>9} "
                  f"{cell['peer_penetration_rate']:>10.2f} "
                  f"{cell['swarm_upload_bytes'] / 1e6:>10.2f}")
    strict = first["hole_punch"]["strict"]
    punched = first["hole_punch"]["hole_punching"]
    print(f"\nhole punch: strict {strict['hole_punch_successes']}"
          f"/{strict['hole_punch_probes']}, hole-punching mode "
          f"{punched['hole_punch_successes']}/{punched['hole_punch_probes']}")
    retuned = first["retune"]["retuned"]
    baseline = first["retune"]["baseline"]
    recovery = retuned.get("recovery_time")
    print(f"retune: recovery "
          f"{'%.1fs' % recovery if recovery is not None else 'none'}, "
          f"late uplink {retuned['late_uplink_mbps']:.3f} Mbps retuned vs "
          f"{baseline['late_uplink_mbps']:.3f} baseline "
          f"(target {RETUNE_TARGET_MBPS})")
    print(f"campaign x2 in {total_s:.1f}s (single pass {first_s:.1f}s), "
          "both passes bit-identical")

    failures = sanity(first)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    if args.quick:
        print("swarm campaign sane (quick mode, no file written)")
        return 0

    report = {
        "config": {
            "peers": args.peers,
            "clients": args.clients,
            "duration_s": args.duration,
            "retune_duration_s": args.retune_duration,
            "seed": args.seed,
            "frontier_pd": FRONTIER_PD,
            "retune": {
                "target_mbps": RETUNE_TARGET_MBPS,
                "gain": RETUNE_GAIN,
                "interval_s": RETUNE_INTERVAL,
                "applier": "control (live FilterService socket)",
            },
        },
        "determinism": "two consecutive same-seed campaigns bit-identical",
        "frontier": first["frontier"],
        "hole_punch": first["hole_punch"],
        "retune": first["retune"],
        "timings": {
            "single_pass_s": round(first_s, 3),
            "double_pass_s": round(total_s, 3),
        },
    }
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"campaign written -> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
