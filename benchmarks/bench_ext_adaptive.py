"""Extension — adaptive P_d vs hand-tuned Equation 1 thresholds.

The paper: P_d "can be dynamically adjusted according to the upload
bandwidth throughput".  The :class:`TargetRateController` needs one number
(the target uplink rate) instead of two thresholds; this bench compares it
against Equation 1 at the equivalent setting, in the closed-loop
simulator where admission control has real effect.
"""

from benchmarks.conftest import print_comparison
from repro.core.autotune import TargetRateController
from repro.core.bitmap_filter import BitmapFilterConfig
from repro.core.throughput import SlidingWindowMeter
from repro.filters.base import AcceptAllFilter
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.policy import DropController
from repro.net.packet import Direction
from repro.sim.closedloop import ClosedLoopSimulator


def bitmap_with(controller):
    return BitmapPacketFilter(
        BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0),
        drop_controller=controller,
    )


def test_ext_adaptive_vs_red(benchmark, standard_specs):
    unfiltered = ClosedLoopSimulator(AcceptAllFilter()).run(standard_specs)
    offered_up = unfiltered.passed.mean_mbps(Direction.OUTBOUND)
    target = offered_up * 0.5

    def run_both():
        red = ClosedLoopSimulator(
            bitmap_with(DropController.red_mbps(low_mbps=target * 0.7,
                                                high_mbps=target * 1.4))
        ).run(standard_specs)
        adaptive = ClosedLoopSimulator(
            bitmap_with(
                DropController(
                    policy=TargetRateController.mbps(target, gain=0.05),
                    meter=SlidingWindowMeter(window=1.0),
                )
            )
        ).run(standard_specs)
        return red, adaptive

    red, adaptive = benchmark.pedantic(run_both, rounds=1, iterations=1)
    red_up = red.passed.mean_mbps(Direction.OUTBOUND)
    adaptive_up = adaptive.passed.mean_mbps(Direction.OUTBOUND)

    print_comparison(
        "Extension — adaptive P_d vs Equation 1 (closed loop)",
        [
            ("uplink unfiltered (Mbps)", "-", f"{offered_up:.2f}"),
            ("target (Mbps)", "-", f"{target:.2f}"),
            ("uplink, Eq. 1 thresholds", "bounded", f"{red_up:.2f}"),
            ("uplink, adaptive controller", "bounded, one knob", f"{adaptive_up:.2f}"),
            ("client conns refused, adaptive", "~0", adaptive.refused_by_initiator.get("client", 0)),
        ],
    )

    # Both bound the uplink; adaptive stays selective.
    assert red_up < offered_up
    assert adaptive_up < offered_up
    assert adaptive.refused_by_initiator.get("client", 0) <= 5
    # The controller actually engaged (refused remote-initiated attempts).
    assert adaptive.refused_by_initiator.get("remote", 0) > 0
