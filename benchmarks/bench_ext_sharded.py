"""Extension — Figure 6's deployment choice, measured.

"The bitmap filter can be installed on an edge router directly connected
to a client network or on a core router, which is an aggregate of two or
more client networks."  This bench compares the two placements on the
same two-network traffic:

* one aggregate filter at the core (one 512 KiB bitmap for everything);
* per-network shards (two bitmaps behind a routing step).

Expected shape: identical drop decisions at these utilizations (the
aggregate vector has capacity to spare — Eq. 6 headroom), with sharding
buying policy isolation rather than accuracy.
"""

import heapq

from benchmarks.conftest import print_comparison
from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.sharded import ShardedFilter
from repro.net.inet import parse_ipv4
from repro.net.packet import Direction
from repro.workload.generator import TraceConfig, TraceGenerator

CONFIG = BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0)


def two_network_trace():
    traces = []
    for index, network in enumerate(("10.1.0.0", "10.2.0.0")):
        generator = TraceGenerator(
            TraceConfig(duration=60.0, connection_rate=8.0, seed=41 + index,
                        network=network, prefix_len=16)
        )
        traces.append(generator.packet_list())
    merged = list(heapq.merge(*traces, key=lambda p: p.timestamp))
    return traces, merged


def test_ext_sharded_vs_aggregate(benchmark):
    (net_a, net_b), merged = two_network_trace()

    def run():
        aggregate = BitmapPacketFilter(CONFIG)
        for packet in merged:
            aggregate.process(packet)

        sharded = ShardedFilter([
            (parse_ipv4("10.1.0.0"), 16, BitmapPacketFilter(CONFIG)),
            (parse_ipv4("10.2.0.0"), 16, BitmapPacketFilter(CONFIG)),
        ])
        for packet in merged:
            sharded.process(packet)
        return aggregate, sharded

    aggregate, sharded = benchmark.pedantic(run, rounds=1, iterations=1)

    aggregate_rate = aggregate.stats.drop_rate(Direction.INBOUND)
    shard_rates = {
        name: stats["inbound_drop_rate"] for name, stats in sharded.shard_stats().items()
    }
    print_comparison(
        "Extension — Figure 6 placement: core aggregate vs per-edge shards",
        [
            ("aggregate drop rate (1 filter)", "-", f"{aggregate_rate:.3%}"),
            ("shard 10.1/16 drop rate", "≈ aggregate", f"{shard_rates['10.1.0.0/16']:.3%}"),
            ("shard 10.2/16 drop rate", "≈ aggregate", f"{shard_rates['10.2.0.0/16']:.3%}"),
            ("aggregate utilization", "headroom (Eq. 6)",
             f"{aggregate.core.current_utilization:.5f}"),
            ("memory: aggregate vs sharded", "512 KiB vs 1 MiB",
             f"{aggregate.memory_bytes // 1024} KiB vs "
             f"{sum(s.memory_bytes for _, _, s in sharded.shards) // 1024} KiB"),
            ("unrouted transit packets", "0", sharded.unrouted_packets),
        ],
    )

    # Same decisions within noise: utilization is so far below capacity
    # that cross-network hash pollution is invisible.
    blended = sum(
        rate * count for rate, count in (
            (shard_rates["10.1.0.0/16"], len(net_a)),
            (shard_rates["10.2.0.0/16"], len(net_b)),
        )
    ) / (len(net_a) + len(net_b))
    assert abs(aggregate_rate - blended) < 0.005
    assert sharded.unrouted_packets == 0
    assert aggregate.core.current_utilization < 0.01
