"""Figure 8 — packet drop rates: SPI filter vs bitmap filter.

Paper setup: SPI deletes idle connections after 240 s (the Windows
TIME_WAIT default); the bitmap filter is {4 × 2^20}, T_e = 20 s, Δt = 5 s,
dropping all inbound packets without state (P_d = 1).  Result: per-window
drop rates land on a slope-1.0 line; averages 1.56 % (SPI) vs 1.51 %
(bitmap), SPI slightly higher because it knows exact connection close
times.
"""

from benchmarks.conftest import print_comparison
from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.spi import SPIFilter
from repro.sim.metrics import least_squares_slope
from repro.sim.replay import compare_drop_rates

PAPER_SPI_RATE = 0.0156
PAPER_BITMAP_RATE = 0.0151


def paper_bitmap_filter() -> BitmapPacketFilter:
    return BitmapPacketFilter(
        BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0)
    )


def test_fig8_drop_rate_comparison(benchmark, standard_trace):
    comparison = benchmark.pedantic(
        lambda: compare_drop_rates(
            standard_trace,
            {"spi": SPIFilter(idle_timeout=240.0), "bitmap": paper_bitmap_filter()},
        ),
        rounds=1,
        iterations=1,
    )
    spi_rate = comparison.overall("spi")
    bitmap_rate = comparison.overall("bitmap")
    slope = least_squares_slope(comparison.points) if comparison.points else float("nan")

    print_comparison(
        "Figure 8 — SPI vs bitmap drop rates",
        [
            ("SPI average drop rate", f"{PAPER_SPI_RATE:.2%}", f"{spi_rate:.2%}"),
            ("bitmap average drop rate", f"{PAPER_BITMAP_RATE:.2%}", f"{bitmap_rate:.2%}"),
            ("scatter slope (bitmap vs spi)", "1.0", f"{slope:.3f}"),
            ("scatter windows", "-", len(comparison.points)),
        ],
    )

    from repro.report.figures import render_scatter

    print()
    print(render_scatter(comparison.points, title="Figure 8 (rendered)"))

    # Shape: the filters behave near-identically.  The paper's SPI edges
    # out the bitmap by 0.05 points ("drops packets more precisely"); on
    # our synthetic trace the gap is equally small but can go either way,
    # so the assertion bounds the magnitude, not the sign.
    assert abs(spi_rate - bitmap_rate) < 0.01
    assert 0.75 <= slope <= 1.25
    # Both land in the small-single-digit-percent regime the paper reports.
    assert 0.001 < bitmap_rate < 0.10


def test_fig8_per_packet_agreement(benchmark, standard_trace):
    """Stronger than the figure: count per-packet verdict agreement."""
    spi = SPIFilter(idle_timeout=240.0)
    bitmap = paper_bitmap_filter()

    def run():
        agree = 0
        total = 0
        for packet in standard_trace:
            a = spi.process(packet)
            b = bitmap.process(packet)
            total += 1
            agree += a is b
        return agree / total

    agreement = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nper-packet verdict agreement: {agreement:.3%}")
    assert agreement > 0.98
