"""Table 1 — application identification patterns.

Verifies every Table 1 application is identified from its characteristic
payload, and benchmarks the pattern matcher's throughput (it runs on the
first packets of every connection in the analyzer).
"""

import random

from benchmarks.conftest import print_comparison
from repro.analyzer.patterns import match_payload
from repro.workload import apps


def _corpus(rng, copies=200):
    """A mixed payload corpus: every Table 1 protocol plus noise."""
    corpus = []
    for _ in range(copies):
        corpus.extend(
            [
                apps.bittorrent_handshake(rng),
                apps.bittorrent_dht_query(rng),
                apps.edonkey_hello(rng),
                apps.edonkey_udp_ping(rng),
                apps.gnutella_connect(),
                apps.gnutella_udp(rng),
                apps.fasttrack_get(rng),
                apps.http_get(rng),
                apps.http_response(),
                apps.ftp_banner(),
                apps.random_encrypted(rng, 96),
            ]
        )
    return corpus


def test_table1_every_pattern_identifies(benchmark):
    rng = random.Random(5)
    cases = [
        ("bittorrent handshake", apps.bittorrent_handshake(rng), "bittorrent"),
        ("bittorrent DHT", apps.bittorrent_dht_query(rng), "bittorrent"),
        ("edonkey hello", apps.edonkey_hello(rng), "edonkey"),
        ("edonkey UDP", apps.edonkey_udp_ping(rng), "edonkey"),
        ("gnutella connect", apps.gnutella_connect(), "gnutella"),
        ("gnutella GND", apps.gnutella_udp(rng), "gnutella"),
        ("fasttrack GET /.hash", apps.fasttrack_get(rng), "fasttrack"),
        ("http GET", apps.http_get(rng), "http"),
        ("ftp 220 banner", apps.ftp_banner(), "ftp"),
        ("encrypted P2P (MSE)", apps.random_encrypted(random.Random(0), 96), None),
    ]
    corpus = _corpus(rng)

    def match_all():
        return [match_payload(payload) for payload in corpus]

    benchmark(match_all)

    rows = []
    for name, payload, expected in cases:
        got = match_payload(payload)
        rows.append((name, expected or "(no match)", got or "(no match)"))
        assert got == expected, f"{name}: expected {expected}, got {got}"
    print_comparison("Table 1 — payload identification", rows)


def test_table1_matcher_throughput(benchmark):
    """Throughput on realistic first-packet payloads (matters because the
    analyzer runs this on-line, as the paper's customized analyzer does)."""
    rng = random.Random(6)
    corpus = _corpus(rng, copies=400)
    result = benchmark(lambda: sum(1 for p in corpus if match_payload(p) is not None))
    matched_fraction = result / len(corpus)
    print(f"\nmatched {matched_fraction:.1%} of {len(corpus)} payloads "
          f"(10/11 pattern-bearing by construction)")
    assert matched_fraction > 0.85
