#!/usr/bin/env python
"""Replay-throughput benchmark: legacy per-packet path vs batched fast path,
plus the multiprocess sharded engine's scaling curve.

Generates a calibrated ~1M-packet synthetic trace, replays it through the
paper-parameter bitmap filter with both engines, verifies the batched path
reproduced the legacy verdicts and statistics *exactly*, and writes the
measured packets/second plus speedup to ``BENCH_replay_throughput.json``.

A second stage shards the client network (Figure 6's core-router
placement), replays the same trace through ``parallel_replay`` at 1/2/4/8
workers, verifies every merged result is identical to the single-process
sharded run, and writes the scaling curve to ``BENCH_parallel_replay.json``.

Also times the three popcount strategies (``bin().count``, ``int.bit_count``
and the chunked-``to_bytes`` 3.9 fallback) over a realistic vector, since the
utilization probe runs popcount on 2^20-bit integers.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_throughput.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

from repro.core.bitmap_filter import BitmapFilterConfig
from repro.core.bitvector import _popcount_fallback, popcount_int
from repro.filters.base import Verdict
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.sharded import ShardedFilter
from repro.net.inet import parse_ipv4
from repro.net.packet import Direction
from repro.sim.parallel import parallel_replay
from repro.sim.replay import replay
from repro.workload.generator import TraceConfig, TraceGenerator

TARGET_SPEEDUP = 3.0
PROBE_DURATION = 30.0
WORKER_CURVE = (1, 2, 4, 8)


def build_trace(target_packets: int, rate: float, seed: int):
    """Generate roughly ``target_packets`` packets by calibrating duration.

    A short probe trace measures packets per trace-second at the requested
    connection rate; the full trace scales duration to hit the target.
    """
    probe = TraceGenerator(
        TraceConfig(duration=PROBE_DURATION, connection_rate=rate, seed=seed)
    ).packet_list()
    pkts_per_sec = max(len(probe) / PROBE_DURATION, 1.0)
    duration = target_packets / pkts_per_sec
    start = time.perf_counter()
    packets = TraceGenerator(
        TraceConfig(duration=duration, connection_rate=rate, seed=seed)
    ).packet_list()
    if abs(len(packets) - target_packets) > 0.05 * target_packets:
        # The short probe mis-estimates long-trace density (reconnects,
        # long-lived flows); one proportional correction lands within ~1%.
        duration *= target_packets / len(packets)
        packets = TraceGenerator(
            TraceConfig(duration=duration, connection_rate=rate, seed=seed)
        ).packet_list()
    elapsed = time.perf_counter() - start
    print(
        f"trace: {len(packets)} packets over {duration:.0f}s of trace time "
        f"(generated in {elapsed:.1f}s)"
    )
    return packets


def run_replay(packets, batched: bool):
    flt = BitmapPacketFilter(BitmapFilterConfig())
    start = time.perf_counter()
    result = replay(packets, flt, use_blocklist=True, batched=batched)
    elapsed = time.perf_counter() - start
    return result, elapsed


def summarize(result):
    """The equivalence fingerprint: every counter both engines must agree on."""
    router = result.router
    return {
        "packets": result.packets,
        "inbound_packets": result.inbound_packets,
        "inbound_dropped": result.inbound_dropped,
        "filter_stats": router.filter.stats.as_dict(),
        "core_stats": router.filter.core.stats.as_dict(),
        "blocklist_size": len(router.blocklist),
        "suppressed": router.blocklist.suppressed_packets,
        "offered_bins": len(router.offered._bins),
        "passed_bins": len(router.passed._bins),
    }


def make_sharded(shard_count: int, size_bits: int = 20) -> ShardedFilter:
    """Shard the generator's client /24 into ``shard_count`` equal subnets.

    Hosts live in 10.1.0.1-10.1.0.<hosts>, so consecutive sub-prefixes of
    10.1.0.0/24 spread them across shards; remote/transit addresses fall
    to the default lane (there are none in the synthetic trace).
    """
    if shard_count & (shard_count - 1):
        raise ValueError(f"shard_count must be a power of two: {shard_count}")
    base = parse_ipv4("10.1.0.0")
    prefix = 24 + shard_count.bit_length() - 1
    step = 1 << (32 - prefix)
    return ShardedFilter([
        (base + index * step, prefix, BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** size_bits)))
        for index in range(shard_count)
    ])


def sharded_fingerprint(result) -> dict:
    """Every merged counter and bin a sharded replay must agree on."""
    router = result.router
    sharded = router.filter
    return {
        "packets": result.packets,
        "inbound_packets": result.inbound_packets,
        "inbound_dropped": result.inbound_dropped,
        "filter_stats": sharded.stats.as_dict(),
        "shard_stats": sharded.shard_stats(),
        "unrouted": sharded.unrouted_packets,
        "offered_bins": {d.value: dict(b) for d, b in router.offered._bins.items()},
        "passed_bins": {d.value: dict(b) for d, b in router.passed._bins.items()},
        "drop_windows": (dict(router.inbound_drops._packets),
                         dict(router.inbound_drops._dropped)),
        "blocklist_size": len(router.blocklist),
        "suppressed": router.blocklist.suppressed_packets,
    }


def bench_parallel(packets, shard_count: int, output: Path, quick: bool) -> bool:
    """The scaling curve: single-process sharded replay vs 1/2/4/8 workers.

    Returns True when every engine produced identical merged results.
    """
    print(f"\n-- parallel sharded replay ({shard_count} shards) --")
    start = time.perf_counter()
    legacy = replay(packets, make_sharded(shard_count), use_blocklist=True)
    legacy_s = time.perf_counter() - start
    reference = sharded_fingerprint(legacy)
    print(f"single-process sharded: {len(packets) / legacy_s:,.0f} pkts/s "
          f"({legacy_s:.1f}s)")

    curve = {}
    identical = True
    for workers in WORKER_CURVE:
        start = time.perf_counter()
        result = parallel_replay(packets, make_sharded(shard_count),
                                 workers=workers)
        elapsed = time.perf_counter() - start
        matches = sharded_fingerprint(result) == reference
        identical = identical and matches
        curve[workers] = {
            "wall_s": round(elapsed, 2),
            "pkts_per_sec": round(len(packets) / elapsed),
            "identical_to_single_process": matches,
        }
        print(f"workers={workers}: {len(packets) / elapsed:,.0f} pkts/s "
              f"({elapsed:.1f}s) identical={matches}")
    if not identical:
        print("FAIL: a parallel run diverged from the single-process "
              "sharded replay", file=sys.stderr)

    base_wall = curve[1]["wall_s"]
    report = {
        "trace": {"packets": len(packets)},
        "host_cpu_cores": os.cpu_count(),
        "shards": shard_count,
        "single_process_sharded": {
            "wall_s": round(legacy_s, 2),
            "pkts_per_sec": round(len(packets) / legacy_s),
        },
        "workers": curve,
        "speedup_vs_workers_1": {
            workers: round(base_wall / entry["wall_s"], 2)
            for workers, entry in curve.items()
        },
        "identical_results": identical,
        "note": "speedup scales with physical cores; a 1-core host shows "
                "multiprocessing overhead instead of gains",
    }
    if not quick:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"parallel scaling curve -> {output}")
    return identical


def bench_popcount(size: int = 1 << 20, fill: float = 0.3, repeat: int = 200):
    """Time the popcount strategies on a realistically-loaded vector."""
    rng = random.Random(0)
    value = 0
    for _ in range(int(size * fill)):
        value |= 1 << rng.randrange(size)

    def timeit(fn):
        start = time.perf_counter()
        for _ in range(repeat):
            fn(value)
        return (time.perf_counter() - start) / repeat

    results = {
        "bits": size,
        "popcount": popcount_int(value),
        "bin_count_us": timeit(lambda v: bin(v).count("1")) * 1e6,
        "bit_count_us": timeit(popcount_int) * 1e6,
        "chunked_fallback_us": timeit(_popcount_fallback) * 1e6,
    }
    results["bin_count_vs_bit_count"] = (
        results["bin_count_us"] / results["bit_count_us"]
    )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=1_000_000,
                        help="target trace length (default: 1M)")
    parser.add_argument("--rate", type=float, default=20.0,
                        help="connection arrivals per second (default: 20)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_replay_throughput.json")
    parser.add_argument("--parallel-output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_parallel_replay.json")
    parser.add_argument("--skip-popcount", action="store_true",
                        help="skip the popcount micro-benchmark")
    parser.add_argument("--shards", type=int, default=8,
                        help="shard count for the parallel stage (power of 2)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: ~50k packets, no file writes, "
                             "no speedup-target enforcement — only the "
                             "equivalence checks gate the exit code")
    args = parser.parse_args(argv)
    if args.quick:
        args.packets = min(args.packets, 50_000)
        args.skip_popcount = True

    packets = build_trace(args.packets, args.rate, args.seed)
    outbound = sum(1 for p in packets if p.direction is Direction.OUTBOUND)

    legacy, legacy_s = run_replay(packets, batched=False)
    print(f"legacy:  {len(packets) / legacy_s:,.0f} pkts/s ({legacy_s:.1f}s)")
    batched, batched_s = run_replay(packets, batched=True)
    print(f"batched: {len(packets) / batched_s:,.0f} pkts/s ({batched_s:.1f}s)")

    legacy_summary = summarize(legacy)
    batched_summary = summarize(batched)
    if legacy_summary != batched_summary:
        print("FAIL: batched path diverged from legacy path", file=sys.stderr)
        print(f"legacy:  {legacy_summary}", file=sys.stderr)
        print(f"batched: {batched_summary}", file=sys.stderr)
        return 1
    print("verdicts/stats identical across engines")

    speedup = legacy_s / batched_s
    memo = legacy.router.filter.hash_memo, batched.router.filter.hash_memo
    # Regression gate: a flow-repetitive trace must produce memo *hits* —
    # zero hits means the memo is being recreated per chunk or get_many
    # dedupes without crediting reuse (the PR-3 accounting bug).
    if memo[1].hits <= 0:
        print(f"FAIL: hash-index memo recorded no hits "
              f"(hits={memo[1].hits}, misses={memo[1].misses})",
              file=sys.stderr)
        return 1
    print(f"hash-index memo: {memo[1].hits:,} hits / {memo[1].misses:,} misses")
    report = {
        "trace": {
            "packets": len(packets),
            "outbound_packets": outbound,
            "inbound_packets": legacy.inbound_packets,
            "connection_rate": args.rate,
            "seed": args.seed,
            "duration_s": round(legacy.duration, 1),
        },
        "legacy": {
            "wall_s": round(legacy_s, 2),
            "pkts_per_sec": round(len(packets) / legacy_s),
        },
        "batched": {
            "wall_s": round(batched_s, 2),
            "pkts_per_sec": round(len(packets) / batched_s),
            "memo_hits": memo[1].hits,
            "memo_misses": memo[1].misses,
        },
        "speedup": round(speedup, 2),
        "target_speedup": TARGET_SPEEDUP,
        "identical_results": {
            "inbound_dropped": legacy.inbound_dropped,
            "blocked_connections": legacy_summary["blocklist_size"],
            "filter_stats": legacy_summary["filter_stats"],
        },
    }
    if not args.skip_popcount:
        report["popcount_bench"] = bench_popcount()
        print(
            "popcount (2^20 bits): "
            f"bin().count {report['popcount_bench']['bin_count_us']:.0f}us, "
            f"bit_count {report['popcount_bench']['bit_count_us']:.1f}us, "
            f"chunked fallback {report['popcount_bench']['chunked_fallback_us']:.0f}us"
        )

    if not args.quick:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"speedup: {speedup:.2f}x (target >= {TARGET_SPEEDUP}x) -> {args.output}")
    else:
        print(f"speedup: {speedup:.2f}x (quick mode, target not enforced)")

    parallel_ok = bench_parallel(packets, args.shards, args.parallel_output,
                                 quick=args.quick)
    if not parallel_ok:
        return 1
    if not args.quick and speedup < TARGET_SPEEDUP:
        print("FAIL: speedup below target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
