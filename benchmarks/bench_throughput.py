#!/usr/bin/env python
"""Replay-throughput benchmark: legacy per-packet path vs batched fast path.

Generates a calibrated ~1M-packet synthetic trace, replays it through the
paper-parameter bitmap filter with both engines, verifies the batched path
reproduced the legacy verdicts and statistics *exactly*, and writes the
measured packets/second plus speedup to ``BENCH_replay_throughput.json``.

Also times the three popcount strategies (``bin().count``, ``int.bit_count``
and the chunked-``to_bytes`` 3.9 fallback) over a realistic vector, since the
utilization probe runs popcount on 2^20-bit integers.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_throughput.py
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.core.bitmap_filter import BitmapFilterConfig
from repro.core.bitvector import _popcount_fallback, popcount_int
from repro.filters.base import Verdict
from repro.filters.bitmap import BitmapPacketFilter
from repro.net.packet import Direction
from repro.sim.replay import replay
from repro.workload.generator import TraceConfig, TraceGenerator

TARGET_SPEEDUP = 3.0
PROBE_DURATION = 30.0


def build_trace(target_packets: int, rate: float, seed: int):
    """Generate roughly ``target_packets`` packets by calibrating duration.

    A short probe trace measures packets per trace-second at the requested
    connection rate; the full trace scales duration to hit the target.
    """
    probe = TraceGenerator(
        TraceConfig(duration=PROBE_DURATION, connection_rate=rate, seed=seed)
    ).packet_list()
    pkts_per_sec = max(len(probe) / PROBE_DURATION, 1.0)
    duration = target_packets / pkts_per_sec
    start = time.perf_counter()
    packets = TraceGenerator(
        TraceConfig(duration=duration, connection_rate=rate, seed=seed)
    ).packet_list()
    if abs(len(packets) - target_packets) > 0.05 * target_packets:
        # The short probe mis-estimates long-trace density (reconnects,
        # long-lived flows); one proportional correction lands within ~1%.
        duration *= target_packets / len(packets)
        packets = TraceGenerator(
            TraceConfig(duration=duration, connection_rate=rate, seed=seed)
        ).packet_list()
    elapsed = time.perf_counter() - start
    print(
        f"trace: {len(packets)} packets over {duration:.0f}s of trace time "
        f"(generated in {elapsed:.1f}s)"
    )
    return packets


def run_replay(packets, batched: bool):
    flt = BitmapPacketFilter(BitmapFilterConfig())
    start = time.perf_counter()
    result = replay(packets, flt, use_blocklist=True, batched=batched)
    elapsed = time.perf_counter() - start
    return result, elapsed


def summarize(result):
    """The equivalence fingerprint: every counter both engines must agree on."""
    router = result.router
    return {
        "packets": result.packets,
        "inbound_packets": result.inbound_packets,
        "inbound_dropped": result.inbound_dropped,
        "filter_stats": router.filter.stats.as_dict(),
        "core_stats": router.filter.core.stats.as_dict(),
        "blocklist_size": len(router.blocklist),
        "suppressed": router.blocklist.suppressed_packets,
        "offered_bins": len(router.offered._bins),
        "passed_bins": len(router.passed._bins),
    }


def bench_popcount(size: int = 1 << 20, fill: float = 0.3, repeat: int = 200):
    """Time the popcount strategies on a realistically-loaded vector."""
    rng = random.Random(0)
    value = 0
    for _ in range(int(size * fill)):
        value |= 1 << rng.randrange(size)

    def timeit(fn):
        start = time.perf_counter()
        for _ in range(repeat):
            fn(value)
        return (time.perf_counter() - start) / repeat

    results = {
        "bits": size,
        "popcount": popcount_int(value),
        "bin_count_us": timeit(lambda v: bin(v).count("1")) * 1e6,
        "bit_count_us": timeit(popcount_int) * 1e6,
        "chunked_fallback_us": timeit(_popcount_fallback) * 1e6,
    }
    results["bin_count_vs_bit_count"] = (
        results["bin_count_us"] / results["bit_count_us"]
    )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=1_000_000,
                        help="target trace length (default: 1M)")
    parser.add_argument("--rate", type=float, default=20.0,
                        help="connection arrivals per second (default: 20)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_replay_throughput.json")
    parser.add_argument("--skip-popcount", action="store_true",
                        help="skip the popcount micro-benchmark")
    args = parser.parse_args(argv)

    packets = build_trace(args.packets, args.rate, args.seed)
    outbound = sum(1 for p in packets if p.direction is Direction.OUTBOUND)

    legacy, legacy_s = run_replay(packets, batched=False)
    print(f"legacy:  {len(packets) / legacy_s:,.0f} pkts/s ({legacy_s:.1f}s)")
    batched, batched_s = run_replay(packets, batched=True)
    print(f"batched: {len(packets) / batched_s:,.0f} pkts/s ({batched_s:.1f}s)")

    legacy_summary = summarize(legacy)
    batched_summary = summarize(batched)
    if legacy_summary != batched_summary:
        print("FAIL: batched path diverged from legacy path", file=sys.stderr)
        print(f"legacy:  {legacy_summary}", file=sys.stderr)
        print(f"batched: {batched_summary}", file=sys.stderr)
        return 1
    print("verdicts/stats identical across engines")

    speedup = legacy_s / batched_s
    memo = legacy.router.filter.hash_memo, batched.router.filter.hash_memo
    report = {
        "trace": {
            "packets": len(packets),
            "outbound_packets": outbound,
            "inbound_packets": legacy.inbound_packets,
            "connection_rate": args.rate,
            "seed": args.seed,
            "duration_s": round(legacy.duration, 1),
        },
        "legacy": {
            "wall_s": round(legacy_s, 2),
            "pkts_per_sec": round(len(packets) / legacy_s),
        },
        "batched": {
            "wall_s": round(batched_s, 2),
            "pkts_per_sec": round(len(packets) / batched_s),
            "memo_hits": memo[1].hits,
            "memo_misses": memo[1].misses,
        },
        "speedup": round(speedup, 2),
        "target_speedup": TARGET_SPEEDUP,
        "identical_results": {
            "inbound_dropped": legacy.inbound_dropped,
            "blocked_connections": legacy_summary["blocklist_size"],
            "filter_stats": legacy_summary["filter_stats"],
        },
    }
    if not args.skip_popcount:
        report["popcount_bench"] = bench_popcount()
        print(
            "popcount (2^20 bits): "
            f"bin().count {report['popcount_bench']['bin_count_us']:.0f}us, "
            f"bit_count {report['popcount_bench']['bit_count_us']:.1f}us, "
            f"chunked fallback {report['popcount_bench']['chunked_fallback_us']:.0f}us"
        )

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"speedup: {speedup:.2f}x (target >= {TARGET_SPEEDUP}x) -> {args.output}")
    if speedup < TARGET_SPEEDUP:
        print("FAIL: speedup below target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
