"""Section 4.3 ablations — the parameter trade-offs the paper argues for.

* T_e (= k·Δt) too short over-kills slow responses; too long admits
  port-reuse false positives — sweep T_e and watch the drop rate fall.
* Smaller N raises false positives (penetration) — sweep N.
* m trades computation for precision at fixed N — sweep m.
* Δt granularity barely matters at fixed T_e — sweep Δt.
"""

import pytest

from benchmarks.conftest import print_comparison
from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.bitmap import BitmapPacketFilter
from repro.sim.replay import replay


def run_bitmap(trace, **config_overrides):
    defaults = dict(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0)
    defaults.update(config_overrides)
    result = replay(
        trace,
        BitmapPacketFilter(BitmapFilterConfig(**defaults)),
        use_blocklist=False,
    )
    return result.inbound_drop_rate


def test_ablation_expiry_time(benchmark, standard_trace):
    """Longer T_e (more vectors at fixed Δt) passes more inbound traffic;
    the marginal gain collapses once T_e clears the out-in delay mass."""
    sweep = benchmark.pedantic(
        lambda: {k: run_bitmap(standard_trace, vectors=k) for k in (2, 4, 8, 12)},
        rounds=1,
        iterations=1,
    )
    rows = [
        (f"k={k} (T_e={k * 5}s)", "drop rate falls with T_e", f"{rate:.3%}")
        for k, rate in sweep.items()
    ]
    print_comparison("Ablation — T_e via k at Δt=5s", rows)
    assert sweep[2] >= sweep[4] >= sweep[8] >= sweep[12]
    # Section 4.3: T_e around 20-30 s is already enough; the k=4 -> k=8
    # improvement is small compared to k=2 -> k=4.
    assert (sweep[2] - sweep[4]) >= (sweep[4] - sweep[8]) - 0.002


def test_ablation_vector_size(benchmark, standard_trace):
    """Small N floods the vector and passes random inbound packets (false
    positives / penetration); drop rate *decreases* as N shrinks."""
    sweep = benchmark.pedantic(
        lambda: {n: run_bitmap(standard_trace, size=2 ** n) for n in (8, 12, 16, 20)},
        rounds=1,
        iterations=1,
    )
    rows = [
        (f"N=2^{n}", "tiny N -> penetration -> fewer drops", f"{rate:.3%}")
        for n, rate in sweep.items()
    ]
    print_comparison("Ablation — vector size N", rows)
    # At N=2^8 with thousands of live pairs the vector saturates: nearly
    # everything penetrates, so almost nothing is dropped.
    assert sweep[8] < sweep[20] * 0.7
    # Big-N regime converges: 2^16 and 2^20 agree closely.
    assert abs(sweep[16] - sweep[20]) < 0.01


def test_ablation_hash_count(benchmark, standard_trace):
    """At operating utilizations, m=1 admits noticeably more false
    positives than m=3; beyond the optimum extra hashes stop helping."""
    sweep = benchmark.pedantic(
        lambda: {m: run_bitmap(standard_trace, size=2 ** 14, hashes=m) for m in (1, 3, 6)},
        rounds=1,
        iterations=1,
    )
    rows = [(f"m={m}", "more hashes -> fewer penetrations", f"{rate:.3%}") for m, rate in sweep.items()]
    print_comparison("Ablation — hash count m at N=2^14", rows)
    assert sweep[1] <= sweep[3] + 1e-9  # m=1 lets more through (drops fewer)
    assert sweep[3] == pytest.approx(sweep[6], abs=0.01)


def test_ablation_rotation_granularity(benchmark, standard_trace):
    """Fixed T_e = 20 s at different granularity: {k=4, Δt=5} vs
    {k=10, Δt=2} vs {k=2, Δt=10} behave almost identically — Δt is a
    performance knob, not a correctness knob (section 4.3)."""
    sweep = benchmark.pedantic(
        lambda: {
            (k, dt): run_bitmap(standard_trace, vectors=k, rotate_interval=dt)
            for k, dt in ((2, 10.0), (4, 5.0), (10, 2.0))
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        (f"k={k}, Δt={dt:g}s", "similar drop rates", f"{rate:.3%}")
        for (k, dt), rate in sweep.items()
    ]
    print_comparison("Ablation — granularity at fixed T_e=20s", rows)
    rates = list(sweep.values())
    assert max(rates) - min(rates) < 0.01


def test_ablation_hole_punching_mode(benchmark, standard_trace):
    """Enabling hole-punching support (ignore remote port) admits at least
    as much inbound traffic as strict five-tuple matching."""
    from repro.core.bitmap_filter import FieldMode

    sweep = benchmark.pedantic(
        lambda: {
            mode.value: run_bitmap(standard_trace, field_mode=mode)
            for mode in (FieldMode.STRICT, FieldMode.HOLE_PUNCHING)
        },
        rounds=1,
        iterations=1,
    )
    rows = [(mode, "hole-punching admits ≥ strict", f"{rate:.3%}") for mode, rate in sweep.items()]
    print_comparison("Ablation — field mode", rows)
    assert sweep["hole-punching"] <= sweep["strict"] + 1e-9
