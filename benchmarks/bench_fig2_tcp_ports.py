"""Figure 2 — CDF of TCP service ports by class (ALL/P2P/Non-P2P/UNKNOWN).

Paper shape: Non-P2P connections concentrate on a handful of well-known
low ports; P2P uses "a great deal of random ports between port 10000 and
port 40000"; the UNKNOWN class's port profile is close to P2P (the paper's
evidence that unknown traffic is mostly encrypted P2P).
"""

from benchmarks.conftest import print_comparison
from repro.analyzer.classifier import TrafficAnalyzer
from repro.analyzer.report import (
    CLASS_ALL,
    CLASS_NON_P2P,
    CLASS_P2P,
    CLASS_UNKNOWN,
    cdf_value,
    port_cdf,
)
from repro.net.inet import IPPROTO_TCP


def test_fig2_tcp_port_cdf(benchmark, standard_trace):
    analyzer = TrafficAnalyzer().analyze(standard_trace)
    cdf = benchmark.pedantic(
        lambda: port_cdf(analyzer.flows, protocol=IPPROTO_TCP), rounds=1, iterations=1
    )

    rows = []
    for klass, paper_low, paper_mid in (
        (CLASS_NON_P2P, "> 0.9", "~1.0"),
        (CLASS_P2P, "< 0.5", "rising to 1.0 by 40000"),
        (CLASS_UNKNOWN, "close to P2P", "close to P2P"),
        (CLASS_ALL, "mixed", "mixed"),
    ):
        if klass not in cdf:
            continue
        at_1024 = cdf_value(cdf[klass], 1024)
        at_10000 = cdf_value(cdf[klass], 10000)
        at_40000 = cdf_value(cdf[klass], 40000)
        rows.append((f"{klass} CDF@1024", paper_low, f"{at_1024:.2f}"))
        rows.append((f"{klass} CDF@10000", "", f"{at_10000:.2f}"))
        rows.append((f"{klass} CDF@40000", paper_mid, f"{at_40000:.2f}"))
    print_comparison("Figure 2 — TCP service-port CDF", rows)

    from repro.report.figures import render_cdf

    print()
    print(
        render_cdf(
            {klass: [(float(p), f) for p, f in cdf[klass]]
             for klass in (CLASS_P2P, CLASS_NON_P2P, CLASS_UNKNOWN)
             if klass in cdf},
            title="Figure 2 (rendered)",
        )
    )

    # Shape assertions.
    non_p2p_low = cdf_value(cdf[CLASS_NON_P2P], 9999)
    p2p_low = cdf_value(cdf[CLASS_P2P], 9999)
    assert non_p2p_low > 0.9, "non-P2P must live on well-known ports"
    assert p2p_low < 0.6, "P2P must use high random ports"
    assert cdf_value(cdf[CLASS_P2P], 40000) > 0.95

    if CLASS_UNKNOWN in cdf:
        unknown_low = cdf_value(cdf[CLASS_UNKNOWN], 9999)
        # "the port distributions of these UNKNOWN connections are close
        #  to P2P applications"
        assert abs(unknown_low - p2p_low) < 0.35
        assert unknown_low < non_p2p_low
