"""Section 5.1 — false positives and false negatives.

Regenerates the worked example: a {4 × 2^20}-bitmap with Δt = 5 s supports
roughly 167K / 125K / 83K active connections per T_e = 20 s window at
penetration probabilities 10 % / 5 % / 1 %, using m = 3 hash functions and
512 KiB of memory — and validates Equation 3 against Monte-Carlo probes of
a real filter.
"""

import random

import pytest

from benchmarks.conftest import print_comparison
from repro.core.analysis import (
    capacity_bound,
    optimal_hash_count,
    penetration_probability,
)
from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.net.inet import IPPROTO_TCP
from repro.net.packet import SocketPair


def test_sec51_capacity_bounds(benchmark):
    size = 2 ** 20
    bounds = benchmark(
        lambda: {p: capacity_bound(size, p) for p in (0.10, 0.05, 0.01)}
    )
    print_comparison(
        "Section 5.1 — capacity of a {4 x 2^20} bitmap (Eq. 6)",
        [
            ("connections @ p=10%", "167K", f"{bounds[0.10] / 1000:.0f}K"),
            ("connections @ p=5%", "125K", f"{bounds[0.05] / 1000:.0f}K"),
            ("connections @ p=1%", "83K", f"{bounds[0.01] / 1000:.0f}K"),
            ("trace active conns / 20s", "15K", "(headroom in every row)"),
            ("memory", "512 KiB", f"{4 * size // 8 // 1024} KiB"),
            ("hash functions m", "3", "3"),
        ],
    )
    # Equation 6 evaluates to 167.5K / 128.8K / 83.8K; the paper quotes
    # 167K / 125K / 83K (they round the middle row more aggressively).
    assert bounds[0.10] == pytest.approx(167_000, rel=0.04)
    assert bounds[0.05] == pytest.approx(125_000, rel=0.04)
    assert bounds[0.01] == pytest.approx(83_000, rel=0.04)


def test_sec51_equation3_montecarlo(benchmark):
    """Equation 3 vs a real filter: fill with c random pairs, probe with
    fresh random pairs, compare the measured penetration rate."""
    size, hashes, connections, probes = 2 ** 16, 3, 4_000, 50_000
    filt = BitmapFilter(BitmapFilterConfig(size=size, vectors=2, hashes=hashes))
    rng = random.Random(42)

    def random_pair():
        return SocketPair(
            IPPROTO_TCP,
            rng.getrandbits(32),
            rng.getrandbits(16),
            rng.getrandbits(32),
            rng.getrandbits(16),
        )

    for _ in range(connections):
        filt.mark_outbound(random_pair())

    hits = benchmark.pedantic(
        lambda: sum(filt.lookup_inbound(random_pair()) for _ in range(probes)),
        rounds=1,
        iterations=1,
    )
    measured = hits / probes
    predicted = penetration_probability(connections, size, hashes)
    exact_u = filt.current_utilization ** hashes
    print_comparison(
        "Section 5.1 — Equation 3 validation (Monte Carlo)",
        [
            ("Eq. 3 approximation", "-", f"{predicted:.4f}"),
            ("Eq. 2 with measured U", "-", f"{exact_u:.4f}"),
            ("measured penetration", "-", f"{measured:.4f}"),
        ],
    )
    assert abs(measured - exact_u) < 0.01
    assert abs(measured - predicted) < 0.02


def test_sec51_optimal_m_sweep(benchmark):
    """Equation 5: sweep m empirically and confirm the analytic optimum
    lands at (or next to) the measured minimum."""
    size, connections, probes = 2 ** 14, 1_200, 20_000
    rng = random.Random(9)

    def measure(m: int) -> float:
        filt = BitmapFilter(BitmapFilterConfig(size=size, vectors=2, hashes=m, seed=m))
        for _ in range(connections):
            filt.mark_outbound(
                SocketPair(IPPROTO_TCP, rng.getrandbits(32), rng.getrandbits(16),
                           rng.getrandbits(32), rng.getrandbits(16))
            )
        hits = sum(
            filt.lookup_inbound(
                SocketPair(IPPROTO_TCP, rng.getrandbits(32), rng.getrandbits(16),
                           rng.getrandbits(32), rng.getrandbits(16))
            )
            for _ in range(probes)
        )
        return hits / probes

    sweep = benchmark.pedantic(
        lambda: {m: measure(m) for m in range(1, 11)}, rounds=1, iterations=1
    )
    analytic = optimal_hash_count(size, connections)
    best_m = min(sweep, key=sweep.get)
    rows = [(f"m={m}", "", f"{rate:.4f}") for m, rate in sweep.items()]
    rows.append(("analytic optimum m*", f"{analytic:.2f}", f"measured best m={best_m}"))
    print_comparison("Section 5.1 — penetration vs m (Eq. 5 check)", rows)
    assert abs(best_m - analytic) <= 2.0
