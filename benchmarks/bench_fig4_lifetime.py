"""Figure 4 — connection lifetime statistics.

Paper: average lifetime 45.84 s; 90 % of connections under 45 s; 95 %
under 4 minutes; fewer than 1 % longer than 810 s; histogram truncated at
the 6000th second.
"""

from benchmarks.conftest import print_comparison
from repro.analyzer.classifier import TrafficAnalyzer
from repro.analyzer.report import lifetime_report


def test_fig4_connection_lifetime(benchmark, standard_trace):
    analyzer = TrafficAnalyzer().analyze(standard_trace)
    report = benchmark.pedantic(
        lambda: lifetime_report(analyzer.flows), rounds=1, iterations=1
    )

    print_comparison(
        "Figure 4 — TCP connection lifetime",
        [
            ("mean (s)", 45.84, report.mean),
            ("90th percentile (s)", "< 45", f"{report.quantiles[0.9]:.1f}"),
            ("95th percentile (s)", "< 240", f"{report.quantiles[0.95]:.1f}"),
            ("fraction > 810 s", "< 1%", f"{report.fraction_over_810s:.2%}"),
            ("observed TCP connections", "-", report.count),
        ],
    )

    from repro.report.figures import render_histogram

    print()
    print(render_histogram(report.histogram[:20], title="Figure 4 (rendered, first bins)"))

    # Shape: heavy concentration below 45 s, thin long tail.
    # (Lifetimes come from flows whose FIN lands inside the trace, which
    # biases against the longest connections; bands stay generous.)
    assert report.quantiles[0.9] <= 50.0
    assert report.quantiles[0.95] <= 260.0
    assert report.fraction_over_810s < 0.02
    assert 10.0 <= report.mean <= 80.0
    assert report.histogram[0][1] > 0  # mass in the first bin
