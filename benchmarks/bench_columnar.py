#!/usr/bin/env python
"""Columnar-plane benchmark: end-to-end generate+replay, object vs table.

PRs 1-3 made the replay *loop* fast; this harness measures what the
columnar packet plane buys end to end.  Three pipelines run over the same
calibrated ~1M-packet synthetic trace, each in its own subprocess so peak
RSS is attributable per mode:

* ``object``   — the PR-3 baseline: ``TraceGenerator.packet_list()``
  (a ``List[Packet]``) replayed through the batched engine, which must
  columnarize via ``PacketColumns.from_packets`` per chunk;
* ``columnar`` — ``TraceGenerator.table()``: one native
  :class:`~repro.net.table.PacketTable`, no packet objects anywhere;
* ``stream``   — ``TraceGenerator.iter_tables(chunk_size)``: bounded-
  memory chunked tables fed straight to the batched engine.

All three must produce bit-identical verdicts, filter statistics and
blocklists; the harness fails otherwise.  The full run requires
``columnar`` to be at least ``TARGET_SPEEDUP``x faster than ``object``
(generation + replay wall time) and writes the measurements, including a
peak-RSS column, to ``BENCH_columnar_trace.json``.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_columnar.py            # full
    PYTHONPATH=src python benchmarks/bench_columnar.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

TARGET_SPEEDUP = 2.0
#: Per-filter fused-kernel floor, enforced for the filters in
#: KERNEL_ENFORCED on the full 1M-packet run.
KERNEL_TARGET_SPEEDUP = 4.0
KERNEL_ENFORCED = ("spi", "counting")
#: Parallel-generation floor at GEN_ENFORCED_WORKERS workers — only
#: enforceable on hosts with at least that many cores (a 1-core host
#: measures multiprocessing overhead, not scaling; the JSON records the
#: honest numbers either way, like BENCH_parallel_replay.json does).
GEN_TARGET_SPEEDUP = 2.5
GEN_ENFORCED_WORKERS = 4
GEN_WORKER_SET = (1, 2, 4, 8)
PROBE_DURATION = 30.0
MODES = ("object", "columnar", "stream")
_CHILD_MARKER = "BENCH_COLUMNAR_RESULT:"

#: --filter spellings → canonical kernel-bench names.
FILTER_ALIASES = {
    "spi": "spi",
    "counting": "counting",
    "counting-bitmap": "counting",
    "tb": "token-bucket",
    "token-bucket": "token-bucket",
    "red": "red",
    "red-policer": "red",
    "chain": "chain",
    "bitmap": "bitmap",
}
KERNEL_FILTERS = ("spi", "counting", "token-bucket", "red", "chain", "bitmap")


def _make_filter():
    from repro.core.bitmap_filter import BitmapFilterConfig
    from repro.filters.bitmap import BitmapPacketFilter

    return BitmapPacketFilter(BitmapFilterConfig())


def _make_kernel_filter(name: str):
    """A fresh, deterministic instance of one registered-kernel filter.

    RED-band controllers (not the always-drop default) so the fractional
    ``P_d`` draw paths — where RNG equivalence can actually break — are
    exercised under load.
    """
    import random

    from repro.core.bitmap_filter import BitmapFilterConfig
    from repro.filters.bitmap import BitmapPacketFilter
    from repro.filters.chain import FilterChain
    from repro.filters.counting import CountingBitmapFilter
    from repro.filters.policy import DropController
    from repro.filters.ratelimit import RedPolicerFilter, TokenBucketFilter
    from repro.filters.spi import SPIFilter

    def red():
        return DropController.red_mbps(0.2, 0.8)

    if name == "spi":
        return SPIFilter(drop_controller=red(), rng=random.Random(7))
    if name == "counting":
        return CountingBitmapFilter(
            BitmapFilterConfig(), drop_controller=red(), rng=random.Random(7)
        )
    if name == "token-bucket":
        return TokenBucketFilter(rate_mbps=0.5)
    if name == "red":
        return RedPolicerFilter.mbps(0.2, 0.8, rng=random.Random(7))
    if name == "chain":
        return FilterChain([
            SPIFilter(drop_controller=red(), rng=random.Random(3)),
            TokenBucketFilter(rate_mbps=0.5),
            RedPolicerFilter.mbps(0.2, 0.8, rng=random.Random(5)),
        ])
    if name == "bitmap":
        return BitmapPacketFilter(BitmapFilterConfig())
    raise ValueError(f"unknown kernel filter: {name}")


def run_filter_bench(names, duration: float, rate: float, seed: int) -> dict:
    """Sequential vs batched (fused kernel) per filter, one shared trace.

    Runs in-process — this section measures loop speed, not RSS.  The
    blocklist stays off so every filter, including the chain (whose
    kernel declines blocklisted runs), exercises its fused kernel.  Both
    paths must agree on the verdict fingerprint, statistics and packet
    counts or the bench fails.
    """
    from repro.sim.replay import replay
    from repro.workload.generator import TraceConfig, TraceGenerator

    config = TraceConfig(duration=duration, connection_rate=rate, seed=seed)
    table = TraceGenerator(config).table()
    print(f"kernel bench trace: {len(table):,} packets")

    section = {}
    for name in names:
        start = time.perf_counter()
        sequential = replay(table, _make_kernel_filter(name),
                            use_blocklist=False, batched=False,
                            record_fingerprint=True)
        sequential_s = time.perf_counter() - start

        start = time.perf_counter()
        batched = replay(table, _make_kernel_filter(name),
                         use_blocklist=False, batched=True,
                         record_fingerprint=True)
        batched_s = time.perf_counter() - start

        matches = (
            sequential.fingerprint == batched.fingerprint
            and sequential.packets == batched.packets
            and sequential.router.filter.stats.as_dict()
            == batched.router.filter.stats.as_dict()
        )
        speedup = sequential_s / max(batched_s, 1e-9)
        section[name] = {
            "sequential_s": round(sequential_s, 3),
            "batched_s": round(batched_s, 3),
            "speedup": round(speedup, 2),
            "identical": matches,
        }
        print(f"{name:>14}: sequential {sequential_s:.2f}s, batched "
              f"{batched_s:.2f}s -> {speedup:.2f}x "
              f"({'identical' if matches else 'DIVERGED'})")
    return section


def table_digest(table) -> str:
    """SHA-256 over every column byte and both interning pools — the
    byte-identity witness the parallel generation contract is pinned to."""
    import hashlib

    digest = hashlib.sha256()
    for column in (table.timestamps, table.sizes, table.flags,
                   table.payload_ids, table.outbound, table.pair_ids):
        digest.update(column.tobytes())
    for pair in table.pairs:
        digest.update(repr(tuple(pair)).encode())
        digest.update(b"\x00")
    for payload in table.payloads:
        digest.update(payload)
        digest.update(b"\x00")
    return digest.hexdigest()


def run_generation_scaling(duration: float, rate: float, seed: int,
                           worker_set=GEN_WORKER_SET) -> dict:
    """Generation wall clock and utilization at 1/2/4/8 workers.

    Every worker count must produce the byte-identical table (columns +
    pools) — ``identical`` rows gate the exit code; speedups are
    recorded and only enforced by the caller when the host has the
    cores to show them.
    """
    from repro.workload.generator import TraceConfig, TraceGenerator
    from repro.workload.parallel import GenerationStats

    config = TraceConfig(duration=duration, connection_rate=rate, seed=seed)
    section = {"host_cpu_cores": os.cpu_count(), "workers": {}}
    reference = None
    serial_s = None
    packets = 0
    for workers in worker_set:
        stats = GenerationStats()
        start = time.perf_counter()
        table = TraceGenerator(config).table(workers=workers, stats=stats)
        elapsed = time.perf_counter() - start
        fp = table_digest(table)
        packets = len(table)
        if reference is None:
            reference, serial_s = fp, elapsed
        utilization = stats.utilization() if workers > 1 else 1.0
        row = {
            "generate_s": round(elapsed, 3),
            "speedup_vs_serial": round(serial_s / max(elapsed, 1e-9), 2),
            "worker_busy_s": round(stats.busy_s if workers > 1 else elapsed, 3),
            "utilization": round(utilization, 3),
            "identical": fp == reference,
        }
        section["workers"][str(workers)] = row
        print(f"generate x{workers}: {elapsed:.2f}s "
              f"({row['speedup_vs_serial']:.2f}x, util {utilization:.0%}, "
              f"{'identical' if row['identical'] else 'DIVERGED'})")
    section["packets"] = packets
    if (os.cpu_count() or 1) < GEN_ENFORCED_WORKERS:
        section["note"] = (
            "speedup scales with physical cores; a "
            f"{os.cpu_count()}-core host shows multiprocessing overhead "
            "instead of gains (byte-identity is enforced regardless)"
        )
    return section


def fingerprint(result) -> dict:
    """Every counter the three pipelines must agree on."""
    router = result.router
    return {
        "packets": result.packets,
        "inbound_packets": result.inbound_packets,
        "inbound_dropped": result.inbound_dropped,
        "filter_stats": router.filter.stats.as_dict(),
        "core_stats": router.filter.core.stats.as_dict(),
        "blocklist_size": len(router.blocklist),
        "suppressed": router.blocklist.suppressed_packets,
        "offered_bins": len(router.offered._bins),
        "passed_bins": len(router.passed._bins),
    }


def peak_rss_bytes() -> int:
    """This process's peak resident set size (ru_maxrss is KiB on Linux,
    bytes on macOS)."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak * 1024 if sys.platform != "darwin" else peak


def run_child(mode: str, duration: float, rate: float, seed: int,
              chunk_size: int) -> dict:
    """One pipeline, measured inside this (sub)process."""
    from repro.sim.replay import replay
    from repro.workload.generator import TraceConfig, TraceGenerator

    config = TraceConfig(duration=duration, connection_rate=rate, seed=seed)
    start = time.perf_counter()
    if mode == "object":
        trace = TraceGenerator(config).packet_list()
        count = len(trace)
    elif mode == "columnar":
        trace = TraceGenerator(config).table()
        count = len(trace)
    elif mode == "stream":
        trace = TraceGenerator(config).iter_tables(chunk_size=chunk_size)
        count = None  # unknown until replayed; the stream never fully exists
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown mode: {mode}")
    generated = time.perf_counter()

    result = replay(trace, _make_filter(), use_blocklist=True, batched=True)
    replayed = time.perf_counter()

    gen_s = generated - start
    replay_s = replayed - generated
    if count is None:
        count = result.packets
        gen_s = None  # generation is interleaved with replay when streaming
    return {
        "mode": mode,
        "packets": count,
        "generate_s": None if gen_s is None else round(gen_s, 3),
        "replay_s": round(replay_s, 3),
        "total_s": round(replayed - start, 3),
        "peak_rss_mb": round(peak_rss_bytes() / (1024 * 1024), 1),
        "fingerprint": fingerprint(result),
    }


def run_mode(mode: str, duration: float, rate: float, seed: int,
             chunk_size: int) -> dict:
    """Run one pipeline in a fresh subprocess (isolated peak RSS)."""
    command = [
        sys.executable, str(Path(__file__).resolve()),
        "--child", mode,
        "--duration", repr(duration),
        "--rate", repr(rate),
        "--seed", str(seed),
        "--chunk-size", str(chunk_size),
    ]
    proc = subprocess.run(command, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"{mode} child failed with {proc.returncode}")
    for line in proc.stdout.splitlines():
        if line.startswith(_CHILD_MARKER):
            return json.loads(line[len(_CHILD_MARKER):])
    raise RuntimeError(f"{mode} child produced no result line:\n{proc.stdout}")


def calibrate_duration(target_packets: int, rate: float, seed: int) -> float:
    """Trace seconds that land within ~1% of ``target_packets``."""
    from repro.workload.generator import TraceConfig, TraceGenerator

    probe = TraceGenerator(
        TraceConfig(duration=PROBE_DURATION, connection_rate=rate, seed=seed)
    ).table()
    duration = target_packets / max(len(probe) / PROBE_DURATION, 1.0)
    full = TraceGenerator(
        TraceConfig(duration=duration, connection_rate=rate, seed=seed)
    ).table()
    if abs(len(full) - target_packets) > 0.05 * target_packets:
        # Short probes mis-estimate long-trace density (reconnects,
        # long-lived flows); one proportional correction is enough.
        duration *= target_packets / len(full)
    return duration


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=1_000_000,
                        help="target trace length (default: 1M)")
    parser.add_argument("--rate", type=float, default=16.0,
                        help="connection arrivals per second (default: 16)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--chunk-size", type=int, default=65536,
                        help="stream-mode table chunk rows")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_columnar_trace.json")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: ~50k packets, no file write, "
                             "no speedup-target enforcement — only the "
                             "equivalence checks gate the exit code")
    parser.add_argument("--filter", dest="filters", default=None,
                        metavar="NAME[,NAME...]",
                        help="comma list of per-filter kernel benches to run "
                             f"({', '.join(sorted(set(FILTER_ALIASES)))}); "
                             "with --quick, runs only this section")
    parser.add_argument("--gen-scaling", action="store_true",
                        help="with --quick: run only the parallel-generation "
                             "equivalence section (workers 1/2/4 table "
                             "digests must match)")
    parser.add_argument("--child", choices=MODES, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--duration", type=float, default=None,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        measured = run_child(args.child, args.duration, args.rate, args.seed,
                             args.chunk_size)
        print(_CHILD_MARKER + json.dumps(measured))
        return 0

    filter_names = None
    if args.filters:
        filter_names = []
        for token in args.filters.split(","):
            token = token.strip().lower()
            if token not in FILTER_ALIASES:
                parser.error(f"unknown filter {token!r} "
                             f"(choose from {', '.join(sorted(set(FILTER_ALIASES)))})")
            name = FILTER_ALIASES[token]
            if name not in filter_names:
                filter_names.append(name)

    if args.quick:
        args.packets = min(args.packets, 50_000)

    duration = calibrate_duration(args.packets, args.rate, args.seed)

    if args.quick and args.gen_scaling:
        # CI smoke: workers 1/2/4 must emit the byte-identical table.
        section = run_generation_scaling(duration, args.rate, args.seed,
                                         worker_set=(1, 2, 4))
        diverged = [w for w, row in section["workers"].items()
                    if not row["identical"]]
        if diverged:
            print(f"FAIL: parallel generation diverged at workers {diverged}",
                  file=sys.stderr)
            return 1
        print("parallel generation byte-identical at workers 1/2/4 "
              "(quick mode, speedup target not enforced)")
        return 0

    if args.quick and filter_names:
        # CI smoke: only the per-filter kernel equivalence/speedup section.
        section = run_filter_bench(filter_names, duration, args.rate,
                                   args.seed)
        diverged = [n for n, row in section.items() if not row["identical"]]
        if diverged:
            print(f"FAIL: kernels diverged from sequential: {diverged}",
                  file=sys.stderr)
            return 1
        print("kernel verdicts/stats identical to sequential "
              "(quick mode, speedup target not enforced)")
        return 0
    print(f"trace: ~{args.packets:,} packets over {duration:.0f}s of trace "
          f"time (rate {args.rate:g}/s, seed {args.seed})")

    results = {}
    for mode in MODES:
        results[mode] = run_mode(mode, duration, args.rate, args.seed,
                                 args.chunk_size)
        entry = results[mode]
        gen = "interleaved" if entry["generate_s"] is None else f"{entry['generate_s']:.2f}s"
        print(f"{mode:>8}: gen {gen}, replay {entry['replay_s']:.2f}s, "
              f"total {entry['total_s']:.2f}s, peak RSS {entry['peak_rss_mb']:.0f} MB")

    reference = results["object"]["fingerprint"]
    identical = all(results[mode]["fingerprint"] == reference for mode in MODES)
    if not identical:
        print("FAIL: pipelines diverged", file=sys.stderr)
        for mode in MODES:
            print(f"{mode}: {results[mode]['fingerprint']}", file=sys.stderr)
        return 1
    print("verdicts/stats/blocklist identical across all pipelines")

    kernel_section = None
    if not args.quick or filter_names:
        kernel_section = run_filter_bench(filter_names or KERNEL_FILTERS,
                                          duration, args.rate, args.seed)
        diverged = [n for n, row in kernel_section.items()
                    if not row["identical"]]
        if diverged:
            print(f"FAIL: kernels diverged from sequential: {diverged}",
                  file=sys.stderr)
            return 1

    generation_section = None
    if not args.quick:
        generation_section = run_generation_scaling(duration, args.rate,
                                                    args.seed)
        diverged = [w for w, row in generation_section["workers"].items()
                    if not row["identical"]]
        if diverged:
            print(f"FAIL: parallel generation diverged at workers {diverged}",
                  file=sys.stderr)
            return 1

    speedup = results["object"]["total_s"] / results["columnar"]["total_s"]
    rss_ratio = (results["object"]["peak_rss_mb"]
                 / max(results["stream"]["peak_rss_mb"], 0.1))
    report = {
        "trace": {
            "packets": results["object"]["packets"],
            "trace_duration_s": round(duration, 1),
            "connection_rate": args.rate,
            "seed": args.seed,
        },
        "modes": {
            mode: {k: v for k, v in results[mode].items()
                   if k not in ("mode", "fingerprint")}
            for mode in MODES
        },
        "speedup_columnar_vs_object": round(speedup, 2),
        "target_speedup": TARGET_SPEEDUP,
        "peak_rss_object_vs_stream": round(rss_ratio, 2),
        "identical_results": {
            "inbound_dropped": reference["inbound_dropped"],
            "blocked_connections": reference["blocklist_size"],
            "filter_stats": reference["filter_stats"],
        },
    }
    if kernel_section is not None:
        report["filter_kernels"] = {
            "kernel_target_speedup": KERNEL_TARGET_SPEEDUP,
            "enforced_for": list(KERNEL_ENFORCED),
            "results": kernel_section,
        }
    if generation_section is not None:
        report["generation_scaling"] = {
            "target_speedup_at_workers": {
                "workers": GEN_ENFORCED_WORKERS,
                "speedup": GEN_TARGET_SPEEDUP,
                "enforced": (os.cpu_count() or 1) >= GEN_ENFORCED_WORKERS,
            },
            **generation_section,
        }

    if args.quick:
        print(f"speedup: {speedup:.2f}x (quick mode, target not enforced)")
        return 0

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"speedup: {speedup:.2f}x (target >= {TARGET_SPEEDUP}x), "
          f"stream-mode RSS {rss_ratio:.1f}x smaller -> {args.output}")
    status = 0
    if speedup < TARGET_SPEEDUP:
        print("FAIL: speedup below target", file=sys.stderr)
        status = 1
    for name in KERNEL_ENFORCED:
        row = (kernel_section or {}).get(name)
        if row is None:
            continue  # not part of the requested --filter subset
        if row["speedup"] < KERNEL_TARGET_SPEEDUP:
            print(f"FAIL: {name} kernel speedup {row['speedup']:.2f}x below "
                  f"{KERNEL_TARGET_SPEEDUP}x target", file=sys.stderr)
            status = 1
    if generation_section is not None:
        gen_row = generation_section["workers"].get(str(GEN_ENFORCED_WORKERS))
        if (os.cpu_count() or 1) >= GEN_ENFORCED_WORKERS and gen_row:
            if gen_row["speedup_vs_serial"] < GEN_TARGET_SPEEDUP:
                print(f"FAIL: generation speedup at {GEN_ENFORCED_WORKERS} "
                      f"workers {gen_row['speedup_vs_serial']:.2f}x below "
                      f"{GEN_TARGET_SPEEDUP}x target", file=sys.stderr)
                status = 1
        elif gen_row:
            print(f"generation speedup target not enforced: host has "
                  f"{os.cpu_count()} core(s), floor needs "
                  f">= {GEN_ENFORCED_WORKERS}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
