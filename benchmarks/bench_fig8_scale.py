#!/usr/bin/env python
"""Figure 8 at scale: the SPI-vs-bitmap state/accuracy frontier, 10–100M packets.

The paper's Figure 8 compares per-window inbound drop rates of the exact
per-flow SPI baseline against the {4 × 2^20} bitmap filter on a 7.5-hour
campus trace.  This campaign reproduces that comparison at modern scale
and extends it into a *frontier*: one SPI baseline (unbounded state,
tracked via its flow-table high-water mark) against a ladder of bitmap
sizes {4 × 2^14 … 2^20}, all replayed over the same 10M-packet synthetic
trace through the fused columnar kernels.  Each bitmap contributes one
frontier point — exact ``memory_bytes`` of state versus accuracy against
the SPI reference (overall-rate delta, per-window scatter slope and RMS
error) — showing how much state buys how much precision.

Modes::

    PYTHONPATH=src python benchmarks/bench_fig8_scale.py           # 10M, writes BENCH_fig8_scale.json
    PYTHONPATH=src python benchmarks/bench_fig8_scale.py --quick   # CI smoke, ~60k packets, no write
    PYTHONPATH=src python benchmarks/bench_fig8_scale.py \\
        --packets 100000000 --stream                               # documented 100M opt-in

``--stream`` never materializes the trace: ``compare_drop_rates`` gets a
trace *factory* and each filter replays a fresh bounded-memory
``iter_tables`` chunk stream (deterministic generation makes every pass
identical).  It is forced automatically above ``STREAM_THRESHOLD``
packets — at 100M rows one merged table would not fit comfortably.
``--workers`` parallelizes trace materialization (byte-identical output;
speedup scales with physical cores).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

DEFAULT_PACKETS = 10_000_000
QUICK_PACKETS = 60_000
#: Above this the trace streams per filter instead of materializing once.
STREAM_THRESHOLD = 20_000_000
SCALE_FLOOR_PACKETS = 10_000_000
PROBE_DURATION = 30.0
#: Bitmap ladder: {4 × 2^n} bits, m = 3, Δt = 5 s.  2^20 is the paper's
#: Figure-8 configuration.
BITMAP_BITS = (14, 16, 18, 20)
PAPER_SPI_RATE = 0.0156
PAPER_BITMAP_RATE = 0.0151


def build_filters(counting: bool = False):
    from repro.core.bitmap_filter import BitmapFilterConfig
    from repro.filters.bitmap import BitmapPacketFilter
    from repro.filters.counting import CountingBitmapFilter
    from repro.filters.spi import SPIFilter

    filters = {"spi": SPIFilter(idle_timeout=240.0)}
    for bits in BITMAP_BITS:
        filters[f"bitmap-{bits}"] = BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** bits, vectors=4, hashes=3,
                               rotate_interval=5.0)
        )
    if counting:
        # Counting-Bloom ladder: same {4 × 2^n} geometry, 4-bit counters
        # (4× the bitmap's state) plus close-aware entry deletion.
        for bits in BITMAP_BITS:
            filters[f"counting-{bits}"] = CountingBitmapFilter(
                BitmapFilterConfig(size=2 ** bits, vectors=4, hashes=3,
                                   rotate_interval=5.0)
            )
    return filters


def estimate_duration(target_packets: int, rate: float, seed: int) -> float:
    """First-guess trace seconds from a short probe's packet density.

    Short probes *overestimate* long-run density — connections arriving
    near the probe horizon still emit their full row schedule past it —
    so the guess runs short on long traces; :func:`main` corrects it
    with up to two cheap regeneration passes against the measured count.
    """
    from repro.workload.generator import TraceConfig, TraceGenerator

    probe = TraceGenerator(
        TraceConfig(duration=PROBE_DURATION, connection_rate=rate, seed=seed)
    ).table()
    density = max(len(probe) / PROBE_DURATION, 1.0)
    return 1.05 * target_packets / density


def window_rms(points) -> float:
    """RMS of per-window rate disagreement — 0 means the bitmap replays
    SPI's windows exactly."""
    if not points:
        return float("nan")
    return math.sqrt(sum((y - x) ** 2 for x, y in points) / len(points))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=DEFAULT_PACKETS,
                        help=f"target trace length (default: {DEFAULT_PACKETS:,}; "
                             "100M is the documented opt-in)")
    parser.add_argument("--rate", type=float, default=16.0,
                        help="connection arrivals per second")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int,
                        default=max(1, min(4, os.cpu_count() or 1)),
                        help="trace-generation worker processes "
                             "(default: min(4, cores))")
    parser.add_argument("--chunk-size", type=int, default=262144,
                        help="rows per chunk in --stream mode")
    parser.add_argument("--stream", action="store_true",
                        help="bounded-memory mode: regenerate the chunk "
                             "stream per filter instead of materializing "
                             "one table (automatic above "
                             f"{STREAM_THRESHOLD:,} packets)")
    parser.add_argument("--min-window-packets", type=int, default=20,
                        help="discard scatter windows with fewer inbound "
                             "packets")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_fig8_scale.json")
    parser.add_argument("--counting", action="store_true",
                        help="add a counting-Bloom ladder (same geometry, "
                             "4-bit counters, close-aware deletion) to the "
                             "frontier")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: ~60k packets, no file write; only "
                             "sanity checks gate the exit code")
    args = parser.parse_args(argv)

    from repro.sim.metrics import least_squares_slope
    from repro.sim.replay import compare_drop_rates
    from repro.workload.generator import TraceConfig, TraceGenerator
    from repro.workload.parallel import GenerationStats

    target = min(args.packets, QUICK_PACKETS) if args.quick else args.packets
    stream = args.stream or target > STREAM_THRESHOLD

    started = time.perf_counter()
    duration = estimate_duration(target, args.rate, args.seed)
    calibrate_s = time.perf_counter() - started
    print(f"target ~{target:,} packets -> {duration:.0f}s of trace time "
          f"(rate {args.rate:g}/s, seed {args.seed}, "
          f"{'stream' if stream else 'materialized'}, "
          f"{args.workers} generation worker(s))")

    # Generate, then correct: the probe's first guess runs short on long
    # traces, so up to two regeneration passes scale the duration by the
    # measured shortfall (plus 2 % pad).  Stream mode counts with a
    # bounded-memory chunk pass; materialized mode keeps the table of
    # the passing attempt.
    generation = GenerationStats()
    generate_s = None
    table = None
    attempts = 0
    gen_started = time.perf_counter()
    while True:
        attempts += 1
        config = TraceConfig(duration=duration, connection_rate=args.rate,
                             seed=args.seed)
        if stream:
            count = sum(
                len(chunk)
                for chunk in TraceGenerator(config).iter_tables(
                    chunk_size=args.chunk_size, workers=args.workers
                )
            )
        else:
            table = TraceGenerator(config).table(workers=args.workers,
                                                 stats=generation)
            count = len(table)
        if count >= target or attempts >= 3:
            break
        duration *= 1.02 * target / count
        print(f"  attempt {attempts}: {count:,} packets, short of "
              f"{target:,} -> retrying with {duration:.0f}s")
    generate_s = time.perf_counter() - gen_started
    print(f"generated {count:,} packets in {generate_s:.1f}s "
          f"({attempts} calibration attempt(s))"
          + (f" (utilization {generation.utilization():.0%})"
             if args.workers > 1 and not stream else ""))

    if stream:
        # One factory call per filter: a fresh bounded-memory chunk
        # stream each time, byte-identical by generator determinism.
        # Only the last pass's stats survive — each pass regenerates.
        def trace():
            return TraceGenerator(config).iter_tables(
                chunk_size=args.chunk_size, workers=args.workers,
                stats=generation,
            )
    else:
        trace = table

    filters = build_filters(counting=args.counting)
    comparison = compare_drop_rates(
        trace, filters,
        use_blocklist=False,
        min_window_packets=args.min_window_packets,
        batched=True,
    )
    results = comparison.results
    packets = results["spi"].packets

    spi = filters["spi"]
    spi_rate = comparison.overall("spi")
    spi_sampler = results["spi"].router.inbound_drops
    frontier = [{
        "filter": "spi",
        "state_bytes": spi.peak_memory_bytes,
        "peak_flows": spi.peak_flows,
        "drop_rate": round(spi_rate, 6),
        "role": "unbounded-state reference",
    }]
    from repro.sim.metrics import scatter_points

    ladder = [name for name in filters if name != "spi"]
    for name in ladder:
        flt = filters[name]
        rate = comparison.overall(name)
        points = scatter_points(
            spi_sampler, results[name].router.inbound_drops,
            min_packets=args.min_window_packets,
        )
        try:
            slope = least_squares_slope(points)
        except ValueError:
            slope = float("nan")
        frontier.append({
            "filter": name,
            "state_bytes": flt.memory_bytes,
            "drop_rate": round(rate, 6),
            "delta_vs_spi": round(rate - spi_rate, 6),
            "scatter_slope_vs_spi": round(slope, 4),
            "rms_window_error_vs_spi": round(window_rms(points), 6),
            "scatter_windows": len(points),
        })

    print(f"\n{'filter':>10} {'state':>12} {'drop rate':>10} "
          f"{'Δ vs spi':>10} {'slope':>7} {'RMS':>8}")
    for row in frontier:
        state = f"{row['state_bytes'] / 1024:,.0f} KiB"
        delta = (f"{row['delta_vs_spi']:+.4%}"
                 if "delta_vs_spi" in row else "—")
        slope = (f"{row['scatter_slope_vs_spi']:.3f}"
                 if "scatter_slope_vs_spi" in row else "—")
        rms = (f"{row['rms_window_error_vs_spi']:.4f}"
               if "rms_window_error_vs_spi" in row else "—")
        print(f"{row['filter']:>10} {state:>12} {row['drop_rate']:>10.4%} "
              f"{delta:>10} {slope:>7} {rms:>8}")

    replay_s = comparison.timings["replay_s"]
    total_replay = sum(replay_s.values())
    print(f"\nreplayed {packets:,} packets x {len(filters)} filters in "
          f"{total_replay:.1f}s "
          f"({packets * len(filters) / max(total_replay, 1e-9):,.0f} pkts/s "
          "aggregate, fused kernels)")

    # More state must not make a filter *less* SPI-like: within each
    # ladder family the RMS window error is non-increasing (tiny jitter
    # tolerated).
    families = {}
    for row in frontier[1:]:
        families.setdefault(row["filter"].rsplit("-", 1)[0], []).append(row)
    sane = (
        packets > 0
        and all(0.0 <= row["drop_rate"] < 0.5 for row in frontier)
        and frontier[-1]["scatter_windows"] > 0
        and all(
            rows[i + 1]["rms_window_error_vs_spi"]
            <= rows[i]["rms_window_error_vs_spi"] + 0.01
            for rows in families.values()
            for i in range(len(rows) - 1)
        )
    )
    if not sane:
        print("FAIL: frontier failed sanity checks", file=sys.stderr)
        print(json.dumps(frontier, indent=2), file=sys.stderr)
        return 1

    if args.quick:
        print("fig8-scale frontier sane (quick mode, no file written)")
        return 0

    report = {
        "trace": {
            "packets": packets,
            "trace_duration_s": round(duration, 1),
            "connection_rate": args.rate,
            "seed": args.seed,
            "mode": "stream" if stream else "materialized",
            "generation_workers": args.workers,
            "host_cpu_cores": os.cpu_count(),
        },
        "paper": {
            "figure": "Figure 8 (DSN 2007), extended to a state ladder",
            "spi_rate": PAPER_SPI_RATE,
            "bitmap_rate": PAPER_BITMAP_RATE,
            "bitmap_config": "{4 x 2^20} bits, m=3, dt=5s; SPI idle 240s",
        },
        "phases": {
            "calibrate_s": round(calibrate_s, 3),
            "calibration_attempts": attempts,
            "generate_s": round(generate_s, 3),
            "generation_utilization": (round(generation.utilization(), 3)
                                       if args.workers > 1 else 1.0),
            "replay_s": {name: round(value, 3)
                         for name, value in replay_s.items()},
        },
        "frontier": frontier,
        "scale_floor_packets": SCALE_FLOOR_PACKETS,
        "meets_scale_floor": packets >= SCALE_FLOOR_PACKETS,
        "notes": [
            "state_bytes: exact filter footprint for bitmaps; peak_flows x "
            "200 B/flow (measured CPython footprint) for the SPI baseline",
            "stream mode regenerates the chunk stream per filter: bounded "
            "memory, deterministic and byte-identical per pass",
        ],
    }
    if stream:
        report["notes"].append(
            "stream-mode generate_s measures the counting calibration "
            "pass(es); generation then interleaves with each filter's "
            "replay, inside replay_s"
        )

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"frontier written -> {args.output}")
    if packets < SCALE_FLOOR_PACKETS:
        print(f"FAIL: {packets:,} packets is below the "
              f"{SCALE_FLOOR_PACKETS:,}-packet scale floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
