"""Extension — closed-loop evaluation of the section 5.3 claim.

The paper: "the simulation is unable to block the outbound connections
that may [be] triggered by previously blocked inbound requests ... We
believe that the filter can perform better in a real network
environment."  The closed-loop simulator models that real network:
refused connections never transmit.  This bench quantifies the gap
between open-loop replay and closed-loop filtering, and recovers the
clean monotone threshold sweep.
"""

from benchmarks.conftest import print_comparison
from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.base import AcceptAllFilter
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.policy import DropController
from repro.net.packet import Direction
from repro.sim.closedloop import ClosedLoopSimulator
from repro.sim.replay import replay


def make_filter(low, high):
    return BitmapPacketFilter(
        BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0),
        drop_controller=DropController.red_mbps(low_mbps=low, high_mbps=high),
    )


def test_ext_closedloop_beats_replay(benchmark, standard_trace, standard_specs):
    unfiltered = replay(standard_trace, AcceptAllFilter(), use_blocklist=False)
    offered_up = unfiltered.passed.mean_mbps(Direction.OUTBOUND)
    low, high = offered_up * 0.35, offered_up * 0.70

    open_loop = replay(
        standard_trace, make_filter(low, high), use_blocklist=True
    ).passed.mean_mbps(Direction.OUTBOUND)

    closed = benchmark.pedantic(
        lambda: ClosedLoopSimulator(make_filter(low, high)).run(standard_specs),
        rounds=1,
        iterations=1,
    )
    closed_up = closed.passed.mean_mbps(Direction.OUTBOUND)

    print_comparison(
        "Extension — open-loop replay vs closed-loop filtering",
        [
            ("uplink unfiltered (Mbps)", "-", f"{offered_up:.2f}"),
            ("uplink, open-loop replay", "limited", f"{open_loop:.2f}"),
            ("uplink, closed loop", "better (paper's belief)", f"{closed_up:.2f}"),
            ("connections refused", "-", closed.connections_refused),
            (
                "refused remote-initiated",
                "P2P serving attempts",
                closed.refused_by_initiator.get("remote", 0),
            ),
        ],
    )

    # The paper's belief, confirmed: feedback removes the triggered upload
    # entirely, so closed loop bounds tighter than (or as tight as) open
    # replay, and both sit below the unfiltered uplink.
    assert closed_up <= open_loop * 1.05
    assert closed_up < offered_up * 0.8
    assert closed.refused_by_initiator.get("remote", 0) > 0


def test_ext_closedloop_threshold_sweep_monotone(benchmark, standard_specs):
    """With feedback, lower thresholds mean strictly less admitted upload
    — the clean dose-response curve."""
    unfiltered = ClosedLoopSimulator(AcceptAllFilter()).run(standard_specs)
    offered_up = unfiltered.passed.mean_mbps(Direction.OUTBOUND)

    def run(scale):
        sim = ClosedLoopSimulator(
            make_filter(offered_up * scale / 2, offered_up * scale)
        )
        return sim.run(standard_specs).passed.mean_mbps(Direction.OUTBOUND)

    sweep = benchmark.pedantic(
        lambda: {scale: run(scale) for scale in (0.2, 0.5, 1.0)}, rounds=1, iterations=1
    )
    rows = [
        (f"H = {scale:.0%} of offered", "monotone with H", f"{mbps:.2f} Mbps")
        for scale, mbps in sweep.items()
    ]
    rows.append(("unfiltered", "-", f"{offered_up:.2f} Mbps"))
    print_comparison("Extension — closed-loop threshold sweep", rows)
    assert sweep[0.2] <= sweep[0.5] <= sweep[1.0] <= offered_up * 1.01
    assert sweep[0.2] < offered_up * 0.7
