"""Figure 3 — CDF of UDP port numbers (source and destination counted).

Paper shape: nearly uniform port usage overall, with identifiable spikes
at DNS (53) and the eDonkey ports (4661/4662/4672 ...).
"""

from benchmarks.conftest import print_comparison
from repro.analyzer.classifier import TrafficAnalyzer
from repro.analyzer.report import CLASS_ALL, cdf_value, port_cdf
from repro.net.inet import IPPROTO_UDP


def test_fig3_udp_port_cdf(benchmark, standard_trace):
    analyzer = TrafficAnalyzer().analyze(standard_trace)
    cdf = benchmark.pedantic(
        lambda: port_cdf(analyzer.flows, protocol=IPPROTO_UDP), rounds=1, iterations=1
    )
    all_points = cdf[CLASS_ALL]

    at_53 = cdf_value(all_points, 53)
    just_below_53 = cdf_value(all_points, 52)
    dns_spike = at_53 - just_below_53
    edk_spike = cdf_value(all_points, 4672) - cdf_value(all_points, 4660)
    spread = cdf_value(all_points, 40000) - cdf_value(all_points, 10000)

    print_comparison(
        "Figure 3 — UDP port CDF",
        [
            ("DNS (53) spike", "visible step", f"{dns_spike:.3f}"),
            ("eDonkey 4661-4672 spike", "visible step", f"{edk_spike:.3f}"),
            ("mass in 10000-40000", "broad/uniform", f"{spread:.2f}"),
            ("CDF@1024", "small", f"{cdf_value(all_points, 1024):.3f}"),
        ],
    )

    assert dns_spike > 0.0, "DNS step must be visible"
    assert edk_spike > 0.01, "eDonkey port step must be visible"
    assert spread > 0.3, "high ports must carry broad mass (random P2P ports)"
