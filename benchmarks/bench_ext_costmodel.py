"""Extension — the section 5.2 cost discussion as a deployment table.

The paper argues the bitmap filter's constant-time structure makes both
software deployment and hardware acceleration easy.  This bench evaluates
the analytical model for the paper's configuration on two hardware
profiles, validates the model's *shape* against the measured Python
implementation, and prints the line-rate verdicts.
"""

import random

from benchmarks.conftest import print_comparison
from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.core.costmodel import (
    HARDWARE_ASIC,
    SOFTWARE_2006,
    estimate,
    spi_memory_bytes,
    supports_line_rate,
)
from repro.net.inet import IPPROTO_TCP
from repro.net.packet import SocketPair

PAPER_CONFIG = BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0)


def test_ext_costmodel_line_rates(benchmark):
    costs = benchmark(
        lambda: {
            profile.name: estimate(PAPER_CONFIG, profile)
            for profile in (SOFTWARE_2006, HARDWARE_ASIC)
        }
    )
    rows = []
    for name, cost in costs.items():
        rows.append((f"{name}: outbound cost", "O(m·t_h + m·k·t_m)",
                     f"{cost.outbound_seconds * 1e9:.0f} ns"))
        rows.append((f"{name}: inbound cost", "cheaper", f"{cost.inbound_seconds * 1e9:.0f} ns"))
        rows.append((f"{name}: line rate", "-", f"{cost.line_rate_mbps():,.0f} Mbps"))
    rows.append(
        ("SPI memory at 1M flows", "O(n), 'not affordable'",
         f"{spi_memory_bytes(1_000_000) // 2**20} MiB vs 0.5 MiB bitmap")
    )
    print_comparison("Section 5.2 — analytical deployment costs", rows)

    assert supports_line_rate(PAPER_CONFIG, SOFTWARE_2006, 146.7)  # the trace
    assert supports_line_rate(PAPER_CONFIG, HARDWARE_ASIC, 10_000)  # 10 GbE


def test_ext_costmodel_shape_matches_measurement(benchmark):
    """The model's *ratios* must match the Python implementation: inbound
    is cheaper than outbound, and outbound cost grows with k."""
    rng = random.Random(4)
    pairs = [
        SocketPair(IPPROTO_TCP, rng.getrandbits(32), rng.getrandbits(16),
                   rng.getrandbits(32), rng.getrandbits(16))
        for _ in range(2000)
    ]
    import time

    def measure(vectors):
        filt = BitmapFilter(BitmapFilterConfig(size=2 ** 20, vectors=vectors, hashes=3))
        start = time.perf_counter()
        for pair in pairs:
            filt.mark_outbound(pair)
        mark = time.perf_counter() - start
        start = time.perf_counter()
        for pair in pairs:
            filt.lookup_inbound(pair.inverse)
        lookup = time.perf_counter() - start
        return mark, lookup

    (mark_k4, lookup_k4) = benchmark.pedantic(lambda: measure(4), rounds=1, iterations=1)
    (mark_k8, _) = measure(8)

    print(f"\nmeasured: mark(k=4)={mark_k4 * 1e6 / len(pairs):.2f}us  "
          f"lookup={lookup_k4 * 1e6 / len(pairs):.2f}us  "
          f"mark(k=8)={mark_k8 * 1e6 / len(pairs):.2f}us")
    assert lookup_k4 < mark_k4  # inbound cheaper, as the model says
    assert mark_k8 > mark_k4    # outbound scales with k, as the model says
