"""Extension — close-aware deletion with counting Bloom columns.

The rotating bitmap expires entries only by time; TCP close flags are
visible in headers, so a counting-Bloom variant can delete entries at
connection close.  This bench measures what that buys (lower steady-state
utilization, hence lower penetration probability at equal N) and what it
costs (4-bit counters: 4x memory; per-packet counter updates).
"""

from benchmarks.conftest import print_comparison
from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.counting import CountingBitmapFilter
from repro.net.packet import Direction
from repro.sim.replay import replay


def test_ext_counting_lowers_utilization(benchmark, standard_trace):
    config = BitmapFilterConfig(size=2 ** 16, vectors=4, hashes=3, rotate_interval=5.0)
    plain = BitmapPacketFilter(config)
    counting = CountingBitmapFilter(config)

    def run():
        plain.reset()
        counting.reset()
        plain_util_peak = 0.0
        counting_util_peak = 0.0
        for index, packet in enumerate(standard_trace):
            plain.process(packet)
            counting.process(packet)
            if index % 2000 == 0:  # utilization scans are O(N); sample them
                plain_util_peak = max(plain_util_peak, plain.core.current_utilization)
                counting_util_peak = max(counting_util_peak, counting.current_utilization)
        return plain_util_peak, counting_util_peak

    plain_peak, counting_peak = benchmark.pedantic(run, rounds=1, iterations=1)

    print_comparison(
        "Extension — close-aware deletion (N=2^16)",
        [
            ("peak utilization, rotating bitmap", "-", f"{plain_peak:.4f}"),
            ("peak utilization, counting+close", "lower", f"{counting_peak:.4f}"),
            ("entries deleted on close", "-", counting.deleted_on_close),
            ("memory, rotating bitmap", "k·N/8", f"{plain.memory_bytes // 1024} KiB"),
            ("memory, counting (4-bit)", "4x", f"{counting.memory_bytes // 1024} KiB"),
            ("peak half-closed table", "bounded, small", counting.half_closed_pairs),
        ],
    )

    assert counting.deleted_on_close > 0
    assert counting_peak <= plain_peak
    assert counting.memory_bytes == 4 * plain.memory_bytes


def test_ext_counting_same_verdicts_on_live_flows(benchmark, standard_trace):
    """Deletion must not change decisions for traffic of *open*
    connections — agreement with the plain bitmap stays very high (the
    only divergence is post-close packets, which SPI also drops)."""
    config = BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0)
    plain = BitmapPacketFilter(config)
    counting = CountingBitmapFilter(config)

    def run():
        agree = 0
        for packet in standard_trace:
            agree += plain.process(packet) is counting.process(packet)
        return agree / len(standard_trace)

    agreement = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nverdict agreement plain vs counting: {agreement:.3%}")
    assert agreement > 0.98
    drop_plain = plain.stats.drop_rate(Direction.INBOUND)
    drop_counting = counting.stats.drop_rate(Direction.INBOUND)
    # Close-aware deletion can only drop MORE inbound packets (earlier
    # reclamation), mirroring SPI's "knows the exact close time" edge.
    assert drop_counting >= drop_plain - 1e-9
