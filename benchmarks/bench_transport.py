#!/usr/bin/env python
"""Transport benchmark: binary columnar codec vs JSON rows, shm vs pickle.

PR 6 put one binary columnar representation on both hot boundaries; this
harness measures what it buys and pins the equivalence contract:

* **Wire codec** — the same ~1M-packet chunk stream is encoded+decoded
  through the legacy JSON-rows payload and the binary columnar codec
  (:class:`repro.net.stream.TableEncoder` with pool deltas).  The decoded
  streams must match column for column; the full run requires the binary
  codec to be at least ``CODEC_TARGET``x faster end to end.
* **Worker dispatch** — the same trace replays through a sharded filter
  with ``transport="pickle"`` and ``transport="shm"``.  Per-lane dispatch
  payloads are measured directly (pickled task bytes: whole lane tables
  vs :class:`~repro.sim.shm.ShmLane` offset records); merged results must
  be bit-identical to a single-process ``replay()``.  Wall-clock speedup
  over workers=1 is reported always and gated (>= 1.0 for the better
  transport) only when the host actually has more than one core.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_transport.py            # full
    PYTHONPATH=src python benchmarks/bench_transport.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import time
from pathlib import Path

CODEC_TARGET = 5.0
PROBE_DURATION = 30.0


def calibrate_duration(target_packets: int, rate: float, seed: int) -> float:
    """Trace seconds that land within ~5% of ``target_packets``."""
    from repro.workload.generator import TraceConfig, TraceGenerator

    probe = TraceGenerator(
        TraceConfig(duration=PROBE_DURATION, connection_rate=rate, seed=seed)
    ).table()
    duration = target_packets / max(len(probe) / PROBE_DURATION, 1.0)
    full = TraceGenerator(
        TraceConfig(duration=duration, connection_rate=rate, seed=seed)
    ).table()
    if abs(len(full) - target_packets) > 0.05 * target_packets:
        duration *= target_packets / len(full)
    return duration


def chunk_stream(duration: float, rate: float, seed: int, chunk_size: int):
    from repro.workload.generator import TraceConfig, TraceGenerator

    return TraceGenerator(
        TraceConfig(duration=duration, connection_rate=rate, seed=seed)
    ).iter_tables(chunk_size)


# ---------------------------------------------------------------------------
# Wire codec
# ---------------------------------------------------------------------------


def bench_codec(duration: float, rate: float, seed: int,
                chunk_size: int) -> dict:
    from repro.net.stream import (
        TableEncoder,
        decode_table,
        encode_table_json,
    )
    from repro.net.table import PacketTable

    chunks = list(chunk_stream(duration, rate, seed, chunk_size))
    rows = sum(len(chunk) for chunk in chunks)
    print(f"codec: {rows:,} packets in {len(chunks)} chunks of {chunk_size}")

    # JSON rows (the legacy payload).
    start = time.perf_counter()
    json_frames = [encode_table_json(chunk) for chunk in chunks]
    json_encode_s = time.perf_counter() - start
    pool = PacketTable()
    start = time.perf_counter()
    json_decoded = [decode_table(frame, pool=pool) for frame in json_frames]
    json_decode_s = time.perf_counter() - start

    # Binary columnar with pool deltas.
    encoder = TableEncoder()
    start = time.perf_counter()
    binary_frames = [encoder.encode(chunk) for chunk in chunks]
    binary_encode_s = time.perf_counter() - start
    pool = PacketTable()
    start = time.perf_counter()
    binary_decoded = [decode_table(frame, pool=pool) for frame in binary_frames]
    binary_decode_s = time.perf_counter() - start

    # Equivalence: both decoded streams must reproduce the source stream.
    # The binary path carries pool deltas, so its interned ids match the
    # source ids bit for bit; JSON re-interns row by row (first-seen
    # order can differ from the generator's arrival-order pool), so its
    # pairs/payloads are compared by value.
    for source, js, bi in zip(chunks, json_decoded, binary_decoded):
        for name, _ in PacketTable.COLUMNS:
            column = list(getattr(source, name))
            if name not in ("pair_ids", "payload_ids"):
                if list(getattr(js, name)) != column:
                    raise SystemExit(f"FAIL: JSON decode diverged on {name}")
            if list(getattr(bi, name)) != column:
                raise SystemExit(f"FAIL: binary decode diverged on {name}")
        for position in range(len(source)):
            if js.pair(position) != source.pair(position):
                raise SystemExit("FAIL: JSON pair values diverged")
            if js.payloads[js.payload_ids[position]] != \
                    source.payloads[source.payload_ids[position]]:
                raise SystemExit("FAIL: JSON payload values diverged")
    print("codec equivalence: JSON and binary decode the identical stream")

    json_total = json_encode_s + json_decode_s
    binary_total = binary_encode_s + binary_decode_s
    speedup = json_total / binary_total
    json_bytes = sum(len(frame) for frame in json_frames)
    binary_bytes = sum(len(frame) for frame in binary_frames)
    report = {
        "packets": rows,
        "chunks": len(chunks),
        "chunk_size": chunk_size,
        "json": {
            "encode_s": round(json_encode_s, 3),
            "decode_s": round(json_decode_s, 3),
            "total_s": round(json_total, 3),
            "bytes": json_bytes,
            "pkts_per_s": round(rows / json_total),
        },
        "binary": {
            "encode_s": round(binary_encode_s, 3),
            "decode_s": round(binary_decode_s, 3),
            "total_s": round(binary_total, 3),
            "bytes": binary_bytes,
            "pkts_per_s": round(rows / binary_total),
        },
        "speedup_binary_vs_json": round(speedup, 2),
        "bytes_ratio_json_vs_binary": round(json_bytes / binary_bytes, 2),
        "target_speedup": CODEC_TARGET,
    }
    print(f"    json: {json_total:.2f}s ({rows / json_total:,.0f} pkts/s, "
          f"{json_bytes:,} bytes)")
    print(f"  binary: {binary_total:.2f}s ({rows / binary_total:,.0f} pkts/s, "
          f"{binary_bytes:,} bytes)")
    print(f" speedup: {speedup:.1f}x encode+decode, "
          f"{json_bytes / binary_bytes:.1f}x smaller frames")
    return report


# ---------------------------------------------------------------------------
# Worker dispatch
# ---------------------------------------------------------------------------


def _make_sharded(shard_count: int = 4):
    from repro.core.bitmap_filter import BitmapFilterConfig
    from repro.filters.bitmap import BitmapPacketFilter
    from repro.filters.sharded import ShardedFilter
    from repro.net.inet import parse_ipv4

    base = parse_ipv4("10.1.0.0")
    prefix = 24 + shard_count.bit_length() - 1
    step = 1 << (32 - prefix)
    return ShardedFilter([
        (base + i * step, prefix,
         BitmapPacketFilter(BitmapFilterConfig(size=2 ** 16, vectors=4,
                                               hashes=3, rotate_interval=5.0)))
        for i in range(shard_count)
    ])


def _result_fingerprint(result) -> dict:
    """Everything the transports and the offline replay must agree on."""
    router = result.router
    sharded = router.filter
    return {
        "packets": result.packets,
        "inbound_packets": result.inbound_packets,
        "inbound_dropped": result.inbound_dropped,
        "duration": result.duration,
        "filter_stats": sharded.stats.as_dict(),
        "shard_stats": sharded.shard_stats(),
        "offered_bins": router.offered._bins,
        "passed_bins": router.passed._bins,
        "blocked": (dict(router.blocklist._blocked)
                    if router.blocklist is not None else None),
    }


def _dispatch_bytes(table, sharded) -> dict:
    """Pickled per-lane task payload sizes: whole lane tables vs ShmLane
    offset records — the dispatch overhead each worker pays before it can
    start replaying."""
    from repro.sim.shm import SharedTableArena

    lanes, default_lane = sharded.partition_table(table)
    lane_tables = [(i, lane) for i, lane in enumerate(lanes) if len(lane)]
    if len(default_lane):
        lane_tables.append((-1, default_lane))
    pickle_bytes = sum(
        len(pickle.dumps(lane, protocol=pickle.HIGHEST_PROTOCOL))
        for _, lane in lane_tables
    )
    arena = SharedTableArena.publish(lane_tables)
    try:
        shm_bytes = sum(
            len(pickle.dumps(ref, protocol=pickle.HIGHEST_PROTOCOL))
            for ref in arena.lanes
        )
        segment_bytes = arena.nbytes
    finally:
        arena.dispose()
    return {
        "lanes": len(lane_tables),
        "pickle_task_bytes": pickle_bytes,
        "shm_task_bytes": shm_bytes,
        "shm_segment_bytes": segment_bytes,
        "per_lane_reduction": round(pickle_bytes / max(shm_bytes, 1)),
    }


def bench_dispatch(duration: float, rate: float, seed: int, workers: int) -> dict:
    from repro.net.table import as_table
    from repro.sim.parallel import parallel_replay
    from repro.sim.replay import replay
    from repro.sim.shm import HAVE_SHARED_MEMORY

    table = as_table(chunk_stream(duration, rate, seed, 65536))
    print(f"dispatch: {len(table):,} packets, workers={workers}, "
          f"cpu_count={os.cpu_count()}")

    single_start = time.perf_counter()
    single = replay(table, _make_sharded(), use_blocklist=True)
    single_s = time.perf_counter() - single_start
    reference = _result_fingerprint(single)

    runs = {}
    transports = ["pickle"] + (["shm"] if HAVE_SHARED_MEMORY else [])
    for transport in transports:
        start = time.perf_counter()
        result = parallel_replay(table, _make_sharded(), workers=workers,
                                 transport=transport)
        elapsed = time.perf_counter() - start
        if _result_fingerprint(result) != reference:
            raise SystemExit(
                f"FAIL: transport={transport} diverged from offline replay()"
            )
        runs[transport] = {
            "wall_s": round(elapsed, 3),
            "speedup_vs_single": round(single_s / elapsed, 2),
        }
        print(f"  {transport:>6}: {elapsed:.2f}s "
              f"({single_s / elapsed:.2f}x vs workers=1)")
    print("dispatch equivalence: all transports bit-identical to offline "
          "replay()")

    sizes = _dispatch_bytes(table, _make_sharded())
    print(f"  dispatch payload: pickle {sizes['pickle_task_bytes']:,} B vs "
          f"shm {sizes['shm_task_bytes']:,} B per dispatch "
          f"({sizes['per_lane_reduction']:,}x smaller; segment "
          f"{sizes['shm_segment_bytes']:,} B, copied once)")

    return {
        "packets": len(table),
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "have_shared_memory": HAVE_SHARED_MEMORY,
        "single_process_s": round(single_s, 3),
        "transports": runs,
        "dispatch_payload": sizes,
    }


# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=1_000_000,
                        help="target trace length (default: 1M)")
    parser.add_argument("--rate", type=float, default=16.0,
                        help="connection arrivals per second")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--chunk-size", type=int, default=4096,
                        help="packets per wire frame")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the dispatch section")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_transport.json")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: ~40k packets, no file write, "
                             "no speed targets — only the equivalence "
                             "checks gate the exit code")
    args = parser.parse_args(argv)

    if args.quick:
        args.packets = min(args.packets, 40_000)

    duration = calibrate_duration(args.packets, args.rate, args.seed)
    print(f"trace: ~{args.packets:,} packets over {duration:.0f}s of trace "
          f"time (rate {args.rate:g}/s, seed {args.seed})\n")

    codec = bench_codec(duration, args.rate, args.seed, args.chunk_size)
    print()
    dispatch = bench_dispatch(duration, args.rate, args.seed, args.workers)

    report = {
        "trace": {
            "packets": codec["packets"],
            "trace_duration_s": round(duration, 1),
            "connection_rate": args.rate,
            "seed": args.seed,
        },
        "codec": codec,
        "dispatch": dispatch,
    }

    failures = []
    if codec["speedup_binary_vs_json"] < CODEC_TARGET:
        failures.append(
            f"binary codec speedup {codec['speedup_binary_vs_json']:.2f}x "
            f"below target {CODEC_TARGET}x"
        )
    payload = dispatch["dispatch_payload"]
    if payload["shm_task_bytes"] >= payload["pickle_task_bytes"]:
        failures.append("shm dispatch payload not smaller than pickle")
    if (os.cpu_count() or 1) > 1 and "shm" in dispatch["transports"]:
        # Parallel speedup is only a meaningful gate on a multi-core host;
        # a single-core runner serializes the workers by definition.
        if dispatch["transports"]["shm"]["speedup_vs_single"] < 1.0:
            failures.append(
                "shm transport slower than single-process on a "
                "multi-core host"
            )

    if args.quick:
        print("\nquick mode: speed targets not enforced")
        return 0

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nreport -> {args.output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
