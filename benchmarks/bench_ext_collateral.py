"""Extension — collateral damage: bitmap filter vs indiscriminate policing.

The paper motivates the bitmap filter by what an ISP would otherwise do:
throttle the whole uplink.  This bench compares, at comparable uplink
reduction, how much *legitimate client-initiated traffic* each mechanism
destroys.  The bitmap filter gates only unsolicited inbound requests, so
responses to client requests sail through; a token bucket or blanket RED
policer cannot tell them apart.

Metric: bytes passed on client-initiated connections (web-style traffic a
customer would complain about losing) under each limiter.
"""

from benchmarks.conftest import print_comparison
from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.base import AcceptAllFilter
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.policy import DropController
from repro.filters.ratelimit import TokenBucketFilter
from repro.net.packet import Direction
from repro.sim.closedloop import ClosedLoopSimulator
from repro.workload.apps import Initiator


def client_initiated_upload(result, specs):
    """Bytes the client-initiated connections actually got through.

    The closed-loop simulator reports per-direction totals; to isolate
    client-initiated traffic we re-run per-population, so this helper
    takes a result computed over a filtered spec list.
    """
    return result.passed.total_bytes(Direction.OUTBOUND) + result.passed.total_bytes(
        Direction.INBOUND
    )


def test_ext_collateral_damage(benchmark, standard_specs):
    client_specs = [s for s in standard_specs if s.initiator is Initiator.CLIENT]

    unfiltered = ClosedLoopSimulator(AcceptAllFilter()).run(standard_specs)
    offered_up = unfiltered.passed.mean_mbps(Direction.OUTBOUND)

    def run_all():
        bitmap = ClosedLoopSimulator(
            BitmapPacketFilter(
                BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0),
                drop_controller=DropController.red_mbps(
                    low_mbps=offered_up * 0.25, high_mbps=offered_up * 0.5
                ),
            )
        ).run(standard_specs)
        bucket = ClosedLoopSimulator(
            TokenBucketFilter(rate_mbps=offered_up * 0.5)
        ).run(standard_specs)
        return bitmap, bucket

    bitmap, bucket = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Collateral: client-initiated connections refused by each limiter.
    bitmap_refused_client = bitmap.refused_by_initiator.get("client", 0)
    bucket_refused_client = bucket.refused_by_initiator.get("client", 0)

    print_comparison(
        "Extension — collateral damage at ~equal uplink bound",
        [
            ("uplink unfiltered (Mbps)", "-", f"{offered_up:.2f}"),
            ("uplink, bitmap (Mbps)", "bounded", f"{bitmap.passed.mean_mbps(Direction.OUTBOUND):.2f}"),
            ("uplink, token bucket (Mbps)", "bounded", f"{bucket.passed.mean_mbps(Direction.OUTBOUND):.2f}"),
            ("client conns refused, bitmap", "~0 (selective)", bitmap_refused_client),
            ("client conns refused, bucket", "many (blind)", bucket_refused_client),
            ("remote conns refused, bitmap", "many (the point)", bitmap.refused_by_initiator.get("remote", 0)),
            ("client conns in workload", "-", len(client_specs)),
        ],
    )

    # The headline: the bitmap filter refuses essentially no
    # client-initiated connections, the blind policer kills plenty.
    assert bitmap_refused_client <= len(client_specs) * 0.02
    assert bucket_refused_client > bitmap_refused_client
    assert bitmap.refused_by_initiator.get("remote", 0) > 0
    # Both actually bound the uplink.
    assert bitmap.passed.mean_mbps(Direction.OUTBOUND) < offered_up
    assert bucket.passed.mean_mbps(Direction.OUTBOUND) < offered_up
