"""Shared fixtures for the experiment benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper (see
DESIGN.md's experiment index) and prints a paper-vs-measured comparison;
the pytest-benchmark timing wraps the computational core of the experiment
so the harness also tracks reproduction cost.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.workload.calibrate import measure_specs
from repro.workload.generator import TraceConfig, TraceGenerator

#: The standard evaluation trace — a scaled-down stand-in for the paper's
#: 7.5-hour campus trace (see DESIGN.md substitution table).
STANDARD_CONFIG = TraceConfig(duration=120.0, connection_rate=15.0, seed=2)


@pytest.fixture(scope="session")
def standard_generator():
    generator = TraceGenerator(STANDARD_CONFIG)
    generator.packet_list()  # force spec + packet realization once
    return generator


@pytest.fixture(scope="session")
def standard_trace(standard_generator):
    return standard_generator.packet_list()


@pytest.fixture(scope="session")
def standard_specs(standard_generator):
    return standard_generator.specs()


@pytest.fixture(scope="session")
def standard_measurement(standard_specs, standard_trace):
    return measure_specs(standard_specs, standard_trace)


def print_comparison(title: str, rows) -> None:
    """Render a paper-vs-measured table to stdout.

    ``rows`` is ``[(label, paper_value, measured_value), ...]`` with string
    or float values; floats are shown with sensible precision.
    """
    width = max(len(str(label)) for label, _, _ in rows)
    print(f"\n=== {title} ===")
    print(f"{'metric'.ljust(width)}  {'paper':>14}  {'measured':>14}")
    for label, paper, measured in rows:
        print(f"{str(label).ljust(width)}  {_fmt(paper):>14}  {_fmt(measured):>14}")


def _fmt(value) -> str:
    if isinstance(value, float):
        if 0 < abs(value) < 0.01:
            return f"{value:.5f}"
        return f"{value:,.3f}" if abs(value) < 1000 else f"{value:,.0f}"
    return str(value)
