"""Table 2 — protocol distribution (connections % and utilization %).

Runs the full section-3 traffic analyzer over the standard synthetic trace
and compares the resulting protocol mix against the paper's Table 2.
"""

from benchmarks.conftest import print_comparison
from repro.analyzer.classifier import TrafficAnalyzer
from repro.analyzer.report import protocol_distribution
from repro.workload.calibrate import PAPER_TARGETS


def test_table2_protocol_distribution(benchmark, standard_trace):
    analyzer = benchmark.pedantic(
        lambda: TrafficAnalyzer().analyze(standard_trace), rounds=1, iterations=1
    )
    rows_by_group = {
        row.protocol: row for row in protocol_distribution(analyzer.flows)
    }

    comparison = []
    for group in ("http", "bittorrent", "gnutella", "edonkey", "unknown", "others"):
        paper_conn = PAPER_TARGETS.connection_share.get(group, 0.0)
        paper_bytes = PAPER_TARGETS.byte_share.get(group, 0.0)
        measured = rows_by_group.get(group)
        comparison.append(
            (
                f"{group} connections",
                f"{paper_conn:.1%}",
                f"{measured.connection_share:.1%}" if measured else "0%",
            )
        )
        comparison.append(
            (
                f"{group} utilization",
                f"{paper_bytes:.0%}",
                f"{measured.byte_share:.1%}" if measured else "0%",
            )
        )
    print_comparison("Table 2 — protocol distribution", comparison)

    # Shape assertions: P2P dominates connections and bytes; unknown is a
    # large share whose ports look like P2P (checked in fig2).
    p2p_conn = sum(
        rows_by_group[g].connection_share
        for g in ("bittorrent", "gnutella", "edonkey")
        if g in rows_by_group
    )
    assert p2p_conn > 0.5
    unknown = rows_by_group.get("unknown")
    assert unknown is not None and unknown.byte_share > 0.2


def test_headline_aggregates(benchmark, standard_measurement):
    measurement = standard_measurement
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_comparison(
        "Section 3.3 — headline aggregates",
        [
            ("TCP connection share", "29.8%", f"{measurement.tcp_connection_fraction:.1%}"),
            ("UDP connection share", "70.1%", f"{1 - measurement.tcp_connection_fraction:.1%}"),
            ("TCP byte share", "99.5%", f"{measurement.tcp_byte_fraction:.1%}"),
            ("upload byte share", "89.8%", f"{measurement.upload_byte_fraction:.1%}"),
            (
                "upload on inbound conns",
                "80%",
                f"{measurement.upload_on_inbound_fraction:.1%}",
            ),
        ],
    )
    assert measurement.upload_byte_fraction > 0.7
    assert measurement.tcp_byte_fraction > 0.97
