"""Section 5.2 — performance of the bitmap filter.

The paper's claims, as measurable statements:

* outbound processing is O(m·t_h + m·k·t_m) — constant per packet,
  independent of how many connections are live;
* inbound processing is O(m·t_h + m·t_c) — cheaper than outbound;
* b.rotate is O(N) but runs only every Δt seconds;
* the SPI baseline's per-packet cost involves an O(1)-amortized hash table
  whose *memory* is O(flows) — the bitmap's memory is constant.
"""

import random

import pytest

from benchmarks.conftest import print_comparison
from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.core.bitvector import BitVector, ByteArrayBitVector
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.spi import SPIFilter
from repro.net.inet import IPPROTO_TCP
from repro.net.packet import SocketPair


def random_pairs(count, seed=3):
    rng = random.Random(seed)
    return [
        SocketPair(IPPROTO_TCP, rng.getrandbits(32), rng.getrandbits(16),
                   rng.getrandbits(32), rng.getrandbits(16))
        for _ in range(count)
    ]


@pytest.mark.parametrize("fill", [0, 10_000, 100_000])
def test_sec52_outbound_mark_constant_time(benchmark, fill):
    """Marking cost must not depend on how many pairs are already marked."""
    filt = BitmapFilter(BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3))
    for pair in random_pairs(fill, seed=fill + 1):
        filt.mark_outbound(pair)
    probe = random_pairs(1000, seed=99)

    def mark_batch():
        for pair in probe:
            filt.mark_outbound(pair)

    benchmark(mark_batch)


@pytest.mark.parametrize("fill", [0, 10_000, 100_000])
def test_sec52_inbound_lookup_constant_time(benchmark, fill):
    filt = BitmapFilter(BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3))
    for pair in random_pairs(fill, seed=fill + 2):
        filt.mark_outbound(pair)
    probe = [pair.inverse for pair in random_pairs(1000, seed=98)]

    def lookup_batch():
        for pair in probe:
            filt.lookup_inbound(pair)

    benchmark(lookup_batch)


@pytest.mark.parametrize("n_bits", [16, 20, 24])
def test_sec52_rotate_cost(benchmark, n_bits):
    """b.rotate is the most expensive operation; with the int-backed
    vector its clear is O(1) rebinding, better than the paper's O(N)."""
    filt = BitmapFilter(BitmapFilterConfig(size=2 ** n_bits, vectors=4, hashes=3))
    for pair in random_pairs(2000):
        filt.mark_outbound(pair)
    benchmark(filt.rotate)


@pytest.mark.parametrize("backend", ["int", "bytearray"])
def test_sec52_clear_layouts(benchmark, backend):
    """Compare the two memory layouts' clear cost (the paper assumes a
    C-style O(N) memset; Python ints clear by rebinding)."""
    size = 2 ** 20
    vector = BitVector(size) if backend == "int" else ByteArrayBitVector(size)
    rng = random.Random(1)
    vector.set_many(rng.randrange(size) for _ in range(5000))
    benchmark(vector.clear)


def test_sec52_bitmap_vs_spi_throughput(benchmark, standard_trace):
    """Replay throughput of the full filters on the standard trace."""
    bitmap = BitmapPacketFilter(
        BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0)
    )

    def run():
        bitmap.reset()
        for packet in standard_trace:
            bitmap.process(packet)
        return bitmap.stats.total

    total = benchmark.pedantic(run, rounds=1, iterations=1)
    assert total == len(standard_trace)


def test_sec52_memory_footprint(benchmark, standard_trace):
    """The bitmap uses k·N/8 bytes regardless of load; SPI state grows
    with live flows (the O(n) the paper calls 'not affordable')."""
    spi = SPIFilter(idle_timeout=240.0)
    bitmap = BitmapPacketFilter(
        BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0)
    )

    def run():
        peak = 0
        for packet in standard_trace:
            spi.process(packet)
            bitmap.process(packet)
            peak = max(peak, spi.tracked_flows)
        return peak

    peak_flows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Rough SPI footprint: ~100 bytes/flow entry in a C conntrack, much
    # more in Python; report the structural number.
    print_comparison(
        "Section 5.2 — memory",
        [
            ("bitmap memory", "512 KiB constant", f"{bitmap.memory_bytes // 1024} KiB"),
            ("SPI peak tracked flows", "O(n) entries", f"{peak_flows:,}"),
        ],
    )
    assert bitmap.memory_bytes == 512 * 1024
    assert peak_flows > 0
