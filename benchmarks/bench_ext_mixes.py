"""Extension — does the bitmap filter's behaviour depend on the traffic mix?

The paper evaluates on one campus trace.  This ablation re-runs the core
experiment (positive-listing drop rates, and closed-loop upload bounding)
across four traffic regimes, answering the robustness question a reviewer
would ask:

* on a web-enterprise network the filter is nearly invisible (almost all
  traffic is client-initiated — drop rate near zero, nothing to bound);
* on a P2P-saturated network it bites hardest;
* the crossover is smooth.
"""

from benchmarks.conftest import print_comparison
from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.base import AcceptAllFilter
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.policy import DropController
from repro.net.packet import Direction
from repro.sim.closedloop import ClosedLoopSimulator
from repro.sim.replay import replay
from repro.workload.generator import TraceGenerator
from repro.workload.mixes import ALL_PRESETS


def paper_filter(controller=None):
    return BitmapPacketFilter(
        BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0),
        drop_controller=controller or DropController.always_drop(),
    )


def test_ext_mix_robustness(benchmark):
    def run_all():
        results = {}
        for preset in ALL_PRESETS:
            generator = TraceGenerator(preset.config(duration=60.0, base_rate=10.0, seed=4))
            packets = generator.packet_list()
            specs = generator.specs()

            open_loop = replay(packets, paper_filter(), use_blocklist=False)

            unfiltered = ClosedLoopSimulator(AcceptAllFilter()).run(specs)
            offered_up = unfiltered.passed.mean_mbps(Direction.OUTBOUND)
            limited = ClosedLoopSimulator(
                paper_filter(
                    DropController.red_mbps(low_mbps=offered_up * 0.35,
                                            high_mbps=offered_up * 0.70)
                )
            ).run(specs)
            results[preset.name] = {
                "drop_rate": open_loop.inbound_drop_rate,
                "offered_up": offered_up,
                "limited_up": limited.passed.mean_mbps(Direction.OUTBOUND),
                "client_refused": limited.refused_by_initiator.get("client", 0),
                "remote_refused": limited.refused_by_initiator.get("remote", 0),
            }
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, data in results.items():
        rows.append((f"{name}: inbound drop rate", "tracks P2P share",
                     f"{data['drop_rate']:.2%}"))
        rows.append((f"{name}: uplink bound", "-",
                     f"{data['offered_up']:.2f} -> {data['limited_up']:.2f} Mbps"))
        rows.append((f"{name}: refused client/remote", "selective",
                     f"{data['client_refused']}/{data['remote_refused']}"))
    print_comparison("Extension — mix robustness", rows)

    web = results["web-enterprise"]
    p2p = results["p2p-saturated"]
    campus = results["campus-2007"]
    balanced = results["balanced"]

    # The filter's footprint tracks the P2P share of the mix.
    assert web["drop_rate"] < balanced["drop_rate"] < p2p["drop_rate"] * 1.2
    assert web["drop_rate"] < 0.01, "near-invisible on client/server traffic"
    assert p2p["drop_rate"] > 0.01
    # Selectivity holds in every regime.
    for data in results.values():
        assert data["client_refused"] <= max(2, data["remote_refused"] * 0.05)
    # Bounding engages wherever there is remote-initiated upload to bound.
    assert p2p["limited_up"] < p2p["offered_up"] * 0.7
    assert campus["limited_up"] < campus["offered_up"] * 0.7