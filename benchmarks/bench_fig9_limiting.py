"""Figure 9 — bounding upload traffic with the bitmap filter.

Paper setup: the bitmap filter monitors uplink throughput and drops
stateless inbound packets with the Equation 1 probability (L = 50 Mbps,
H = 100 Mbps on their 146.7 Mbps trace); blocked connections stay blocked
(the σ store).  Result: uplink throughput is pinned near/below H, and some
downlink shrinks too (P2P downloads arriving on separate inbound
connections).

Our trace is scaled down, so L and H scale with the measured offered
uplink load: L = 35 % and H = 70 % of the unfiltered mean — the same
relative position the paper's 50/100 Mbps holds against its ~130 Mbps
uplink.
"""

from benchmarks.conftest import print_comparison
from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.base import AcceptAllFilter
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.policy import DropController
from repro.net.packet import Direction
from repro.sim.replay import replay


def test_fig9_upload_limiting(benchmark, standard_trace):
    unfiltered = replay(standard_trace, AcceptAllFilter(), use_blocklist=False)
    offered_up = unfiltered.passed.mean_mbps(Direction.OUTBOUND)
    offered_down = unfiltered.passed.mean_mbps(Direction.INBOUND)
    low, high = offered_up * 0.35, offered_up * 0.70

    filtered = benchmark.pedantic(
        lambda: replay(
            standard_trace,
            BitmapPacketFilter(
                BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0),
                drop_controller=DropController.red_mbps(low_mbps=low, high_mbps=high),
            ),
            use_blocklist=True,
        ),
        rounds=1,
        iterations=1,
    )
    limited_up = filtered.passed.mean_mbps(Direction.OUTBOUND)
    limited_down = filtered.passed.mean_mbps(Direction.INBOUND)
    p95_up = filtered.passed.quantile_mbps(Direction.OUTBOUND, 0.95)

    print_comparison(
        "Figure 9 — upload limiting (thresholds scaled to trace)",
        [
            ("uplink before (Mbps)", "~130", f"{offered_up:.2f}"),
            ("uplink after (Mbps)", "<= ~100 (H)", f"{limited_up:.2f}"),
            ("H threshold (Mbps)", "100", f"{high:.2f}"),
            ("L threshold (Mbps)", "50", f"{low:.2f}"),
            ("uplink p95 after (Mbps)", "near H", f"{p95_up:.2f}"),
            ("downlink before (Mbps)", "-", f"{offered_down:.2f}"),
            ("downlink after (Mbps)", "also reduced", f"{limited_down:.2f}"),
            ("blocked connections", "-", len(filtered.router.blocklist)),
        ],
    )

    from repro.report.figures import render_series

    horizon = 180.0
    print()
    print(render_series(
        [(t, v) for t, v in unfiltered.passed.series_mbps(Direction.OUTBOUND) if t <= horizon],
        title="Figure 9-a (rendered): uplink before", y_label="Mbps", hline=high,
    ))
    print()
    print(render_series(
        [(t, v) for t, v in filtered.passed.series_mbps(Direction.OUTBOUND) if t <= horizon],
        title="Figure 9-b (rendered): uplink after", y_label="Mbps", hline=high,
    ))

    # Shape assertions: uplink meaningfully reduced toward H; downlink
    # reduced too (the paper's observation about separate inbound transfer
    # connections); replay blocking is imperfect, exactly as the paper
    # notes ("the effect of the traffic filtering is limited" in replay).
    assert limited_up < offered_up * 0.85
    assert limited_down < offered_down
    assert len(filtered.router.blocklist) > 0


def test_fig9_bound_tightens_with_lower_thresholds(benchmark, standard_trace):
    """Ablation on the Figure 9 thresholds: lower (L, H) → lower bound."""
    unfiltered = replay(standard_trace, AcceptAllFilter(), use_blocklist=False)
    offered_up = unfiltered.passed.mean_mbps(Direction.OUTBOUND)

    def run(scale):
        result = replay(
            standard_trace,
            BitmapPacketFilter(
                BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0),
                drop_controller=DropController.red_mbps(
                    low_mbps=offered_up * scale / 2, high_mbps=offered_up * scale
                ),
            ),
            use_blocklist=True,
        )
        return result.passed.mean_mbps(Direction.OUTBOUND)

    sweep = benchmark.pedantic(
        lambda: {scale: run(scale) for scale in (0.3, 0.6, 0.9)}, rounds=1, iterations=1
    )
    rows = [
        (f"H = {scale:.0%} of offered", "lower H -> lower uplink", f"{mbps:.2f} Mbps")
        for scale, mbps in sweep.items()
    ]
    print_comparison("Figure 9 ablation — threshold sweep", rows)
    # Open-loop replay with blocked-σ persistence is path-dependent (which
    # connection's first inbound packet hits a high-P_d instant decides
    # its whole volume), so the sweep is noisy rather than strictly
    # monotone — the paper makes the same caveat about replay ("the
    # effect of the traffic filtering is limited").  The robust shape:
    # every limited run sits below the unfiltered uplink, and even the
    # loosest threshold bites.
    assert all(mbps < offered_up for mbps in sweep.values())
    assert min(sweep.values()) < offered_up * 0.5
    # The closed-loop simulator (repro.sim.closedloop) recovers the clean
    # monotone relationship; see bench_ext_closedloop.py.
