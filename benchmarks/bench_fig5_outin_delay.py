"""Figure 5 — out-in packet delay.

Paper: with the deliberately large expiry timer T_e = 600 s, 99 % of
out-in delays are under 2.8 s, and the port-reuse effect shows as peaks at
multiples of 60 seconds in the raw histogram (part a).
"""

from benchmarks.conftest import print_comparison
from repro.analyzer.outin import OutInDelayMeter


def run_meter(trace, expiry=600.0):
    meter = OutInDelayMeter(expiry=expiry)
    for packet in trace:
        meter.observe(packet)
    return meter


def test_fig5_outin_delay_cdf(benchmark, standard_trace):
    meter = benchmark.pedantic(lambda: run_meter(standard_trace), rounds=1, iterations=1)

    q99 = meter.quantile(0.99)
    cdf_28 = meter.cdf_at(2.8)
    print_comparison(
        "Figure 5-b/c — out-in delay CDF (T_e = 600 s)",
        [
            ("measured delays", "-", len(meter)),
            ("CDF at 2.8 s", "99%", f"{cdf_28:.1%}"),
            ("99th percentile (s)", "2.8", f"{q99:.2f}"),
            ("median (s)", "well under 1", f"{meter.quantile(0.5):.3f}"),
        ],
    )
    assert len(meter) > 5_000
    assert cdf_28 >= 0.95
    assert meter.quantile(0.5) < 1.0


def test_fig5_port_reuse_peaks(benchmark, standard_generator):
    """The Figure 5-a artifact: reused five-tuples within T_e produce
    bogus delays clustered at multiples of the OS port-reuse timeout."""
    config = standard_generator.config
    # Boost the reuse fraction so the peaks are unmistakable on a short
    # trace; the mechanism is identical at the default 2 %.
    from repro.workload.generator import TraceConfig, TraceGenerator

    boosted = TraceGenerator(
        TraceConfig(
            duration=max(300.0, config.duration),
            connection_rate=config.connection_rate,
            seed=config.seed,
            port_reuse_fraction=0.6,
        )
    )
    trace = boosted.packet_list()
    meter = benchmark.pedantic(lambda: run_meter(trace), rounds=1, iterations=1)

    histogram = dict(meter.histogram(bin_width=5.0))
    # Energy near multiples of 60 s (60/120/240 are the modeled OS reuse
    # timeouts) vs neighbouring off-peak bins.
    peak = sum(histogram.get(base, 0) for base in (60.0, 120.0, 240.0))
    off_peak = sum(histogram.get(base, 0) for base in (35.0, 90.0, 150.0, 200.0, 300.0))
    print_comparison(
        "Figure 5-a — port-reuse peaks",
        [
            ("delays in 60/120/240 s bins", "peaks", peak),
            ("delays in off-peak bins", "near zero", off_peak),
        ],
    )
    assert peak > 0, "port-reuse artifact must appear"
    assert peak > off_peak, "peaks must stand above the off-peak floor"


def test_fig5_false_negative_implication(benchmark, standard_trace):
    """Section 5.1 ties Figure 5 to filter correctness: false negatives
    are bounded by 1 - CDF(T_e).  Check the trace agrees for T_e = 20 s."""
    meter = benchmark.pedantic(
        lambda: run_meter(standard_trace, expiry=600.0), rounds=1, iterations=1
    )
    from repro.core.analysis import false_negative_bound

    bound = false_negative_bound(meter.cdf_at(20.0))
    print(f"\nfalse-negative bound at T_e=20s: {bound:.4%} (paper: <1% for T_e>3.61s)")
    assert bound < 0.05
